type scheme =
  | Hop_count
  | Weighted of (int -> float)
  | Usage_penalized
  | Lag_disjoint

type pair = { src : int; dst : int; primary : Path.t list; backup : Path.t list }

let all_paths p = p.primary @ p.backup
let num_primary p = List.length p.primary
let num_backup p = List.length p.backup

type t = pair list

let select_paths topo ~scheme ~src ~dst ~want =
  match scheme with
  | Hop_count -> Shortest.yen topo ~src ~dst want
  | Weighted w -> Shortest.yen ~weight:w topo ~src ~dst want
  | Usage_penalized ->
    (* Re-run shortest path [want] times; every selected path increases
       the weight of its LAGs so later paths prefer fresh LAGs, while
       still allowing overlap when no alternative exists. *)
    let usage = Hashtbl.create 16 in
    let weight id = 1. +. (2. *. float_of_int (try Hashtbl.find usage id with Not_found -> 0)) in
    let rec pick acc k =
      if k = 0 then List.rev acc
      else
        match Shortest.dijkstra ~weight topo ~src ~dst with
        | None -> List.rev acc
        | Some p ->
          if List.exists (Path.equal p) acc then List.rev acc
          else begin
            List.iter
              (fun id ->
                Hashtbl.replace usage id (1 + (try Hashtbl.find usage id with Not_found -> 0)))
              (Path.lag_list p);
            pick (p :: acc) (k - 1)
          end
    in
    pick [] want
  | Lag_disjoint ->
    (* Yen candidates filtered greedily for LAG-disjointness. *)
    let candidates = Shortest.yen topo ~src ~dst (4 * want) in
    let rec greedy acc = function
      | [] -> List.rev acc
      | p :: rest ->
        if List.length acc >= want then List.rev acc
        else if List.for_all (Path.lag_disjoint p) acc then greedy (p :: acc) rest
        else greedy acc rest
    in
    greedy [] candidates

let compute ?(scheme = Hop_count) ~n_primary ~n_backup topo pairs =
  if n_primary < 1 then invalid_arg "Path_set.compute: n_primary < 1";
  if n_backup < 0 then invalid_arg "Path_set.compute: n_backup < 0";
  List.map
    (fun (src, dst) ->
      let want = n_primary + n_backup in
      let paths = select_paths topo ~scheme ~src ~dst ~want in
      if paths = [] then
        invalid_arg
          (Printf.sprintf "Path_set.compute: no path between %s and %s"
             (Wan.Topology.node_name topo src)
             (Wan.Topology.node_name topo dst));
      let rec split n = function
        | [] -> ([], [])
        | l when n = 0 -> ([], l)
        | x :: tl ->
          let a, b = split (n - 1) tl in
          (x :: a, b)
      in
      let primary, backup = split n_primary paths in
      { src; dst; primary; backup })
    pairs

let find t ~src ~dst =
  match List.find_opt (fun p -> p.src = src && p.dst = dst) t with
  | Some p -> p
  | None -> raise Not_found

let total_paths t = List.fold_left (fun acc p -> acc + num_primary p + num_backup p) 0 t

let via_gateway ~n_primary ~n_backup topo ~gateway ~dsts =
  if n_primary < 1 then invalid_arg "Path_set.via_gateway: n_primary < 1";
  let want = n_primary + n_backup in
  List.map
    (fun dst ->
      if dst = gateway then invalid_arg "Path_set.via_gateway: dst = gateway";
      let candidates =
        Wan.Topology.neighbors topo gateway
        |> List.concat_map (fun (g, _) ->
               if g = dst then
                 match Path.make topo [ gateway; dst ] with
                 | p -> [ p ]
                 | exception Invalid_argument _ -> []
               else
                 Shortest.yen topo ~src:g ~dst want
                 |> List.filter_map (fun p ->
                        (* prefix the gateway hop; drop paths that loop
                           back through the gateway *)
                        if List.mem gateway (Path.node_list p) then None
                        else
                          match Path.make topo (gateway :: Path.node_list p) with
                          | q -> Some q
                          | exception Invalid_argument _ -> None))
      in
      let sorted =
        List.sort_uniq
          (fun a b ->
            match compare (Path.length a) (Path.length b) with
            | 0 -> Path.compare a b
            | c -> c)
          candidates
      in
      if sorted = [] then
        invalid_arg
          (Printf.sprintf "Path_set.via_gateway: no path from gateway to %s"
             (Wan.Topology.node_name topo dst));
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: tl -> x :: take (n - 1) tl
      in
      let primary = take n_primary sorted in
      let rest =
        List.filteri (fun i _ -> i >= List.length primary && i < want) sorted
      in
      { src = gateway; dst; primary; backup = rest })
    dsts
