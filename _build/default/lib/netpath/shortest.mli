(** Shortest-path algorithms over {!Wan.Topology}: Dijkstra and Yen's
    k-shortest loopless paths. Raha runs k-shortest-path tunnel selection
    when operators do not supply paths (§3). *)

(** [dijkstra topo ~weight ~src ~dst] is the minimum-weight simple path,
    or [None] if [dst] is unreachable. [weight] maps a LAG id to a
    non-negative weight (default: hop count).
    [avoid_lags]/[avoid_nodes] exclude parts of the graph (used by Yen's
    spur computation). *)
val dijkstra :
  ?weight:(int -> float) ->
  ?avoid_lags:(int -> bool) ->
  ?avoid_nodes:(int -> bool) ->
  Wan.Topology.t ->
  src:int ->
  dst:int ->
  Path.t option

(** [yen topo ~weight ~src ~dst k] lists up to [k] shortest loopless
    paths in non-decreasing weight order (Yen's algorithm). *)
val yen :
  ?weight:(int -> float) -> Wan.Topology.t -> src:int -> dst:int -> int -> Path.t list
