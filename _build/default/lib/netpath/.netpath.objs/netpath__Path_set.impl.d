lib/netpath/path_set.ml: Hashtbl List Path Printf Shortest Wan
