lib/netpath/shortest.mli: Path Wan
