lib/netpath/path.mli: Format Wan
