lib/netpath/path_set.mli: Path Wan
