lib/netpath/shortest.ml: Array Hashtbl List Path Wan
