lib/netpath/path.ml: Array Format Hashtbl Int List Printf String Wan
