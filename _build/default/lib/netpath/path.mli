(** Simple paths through a {!Wan.Topology}. *)

type t = private {
  nodes : int array;  (** node sequence, length >= 2 *)
  lag_ids : int array;  (** LAG of each hop; length = |nodes| - 1 *)
}

(** [make topo nodes] builds a path along [nodes], picking the (lowest-id)
    LAG for each consecutive pair.
    @raise Invalid_argument if a hop has no LAG, the path revisits a node,
    or it is shorter than one hop. *)
val make : Wan.Topology.t -> int list -> t

(** [of_lags topo ~src lag_ids] reconstructs the node sequence by walking
    [lag_ids] from [src]. *)
val of_lags : Wan.Topology.t -> src:int -> int list -> t

val src : t -> int
val dst : t -> int

(** Number of hops (LAGs). *)
val length : t -> int

val mem_lag : t -> int -> bool

(** Nodes as a list (copy). *)
val node_list : t -> int list

val lag_list : t -> int list

(** [weight w p] is the sum of [w lag_id] over the path's hops. *)
val weight : (int -> float) -> t -> float

(** True when the two paths share no LAG. *)
val lag_disjoint : t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Wan.Topology.t -> Format.formatter -> t -> unit
