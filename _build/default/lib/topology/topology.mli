(** WAN topologies: nodes connected by {!Lag} edges.

    Nodes are dense integer ids with optional names. LAGs are undirected;
    a LAG's capacity constrains the total flow across it in both
    directions, matching the path-form TE model of §4.2. *)

type t

(** [create ~name ~num_nodes lags] validates endpoints and builds the
    topology. Node names default to ["n<i>"].
    @raise Invalid_argument on out-of-range endpoints or non-dense LAG
    ids. *)
val create : ?node_names:string array -> name:string -> num_nodes:int -> Lag.t list -> t

val name : t -> string
val num_nodes : t -> int
val num_lags : t -> int

(** Total number of physical links across all LAGs. *)
val num_links : t -> int

val lags : t -> Lag.t array
val lag : t -> int -> Lag.t
val node_name : t -> int -> string

(** [node_id t name] looks a node up by name. @raise Not_found. *)
val node_id : t -> string -> int

(** [neighbors t v] lists [(neighbor, lag_id)] pairs. Parallel LAGs
    produce multiple entries. *)
val neighbors : t -> int -> (int * int) list

(** [lag_between t u v] is the lowest-id LAG joining [u] and [v], if any. *)
val lag_between : t -> int -> int -> Lag.t option

(** Mean LAG capacity — the normalization constant used by every
    "degradation (normalized)" figure in the paper (§8.1). *)
val avg_lag_capacity : t -> float

val is_connected : t -> bool

(** [with_lag_links t ~lag_id links] replaces one LAG's bundle (used by
    capacity augmentation to add links to an existing LAG). *)
val with_lag_links : t -> lag_id:int -> Lag.link list -> t

(** [add_lag t ~src ~dst links] appends a new LAG (used by new-LAG
    augmentation, Appendix C). *)
val add_lag : t -> src:int -> dst:int -> Lag.link list -> t

(** [add_virtual_gateway t ~name ~attached] adds a virtual node connected
    to each node of [attached] by an effectively-uncapacitated,
    failure-free LAG — the "equivalences" device of §9 for multi-gateway
    sources/destinations. Returns the new topology and the new node's
    id. *)
val add_virtual_gateway :
  t -> name:string -> attached:(int * float) list -> t * int

val pp : Format.formatter -> t -> unit
