type token = Lbracket | Rbracket | Ident of string | Str of string | Num of float

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let peek () = if !i < n then Some s.[!i] else None in
  while !i < n do
    match s.[!i] with
    | ' ' | '\t' | '\r' | '\n' -> incr i
    | '#' ->
      (* comment to end of line *)
      while !i < n && s.[!i] <> '\n' do incr i done
    | '[' ->
      tokens := Lbracket :: !tokens;
      incr i
    | ']' ->
      tokens := Rbracket :: !tokens;
      incr i
    | '"' ->
      incr i;
      let b = Buffer.create 16 in
      while !i < n && s.[!i] <> '"' do
        Buffer.add_char b s.[!i];
        incr i
      done;
      if !i >= n then failwith "Gml: unterminated string";
      incr i;
      tokens := Str (Buffer.contents b) :: !tokens
    | c when (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' ->
      let start = !i in
      incr i;
      let is_num_char c =
        (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E' || c = '-' || c = '+'
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do incr i done;
      let lit = String.sub s start (!i - start) in
      (match float_of_string_opt lit with
      | Some f -> tokens := Num f :: !tokens
      | None -> failwith (Printf.sprintf "Gml: bad number %S" lit))
    | c when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' ->
      let start = !i in
      incr i;
      let is_ident c =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
      in
      while (match peek () with Some c -> is_ident c | None -> false) do incr i done;
      tokens := Ident (String.sub s start (!i - start)) :: !tokens
    | c -> failwith (Printf.sprintf "Gml: unexpected character %C" c)
  done;
  List.rev !tokens

(* A GML value is a scalar or a block of key/value pairs. *)
type value = Scalar_num of float | Scalar_str of string | Block of (string * value) list

let rec parse_block tokens =
  (* parses key/value pairs until Rbracket or end; returns (pairs, rest) *)
  match tokens with
  | [] -> ([], [])
  | Rbracket :: rest -> ([], rest)
  | Ident key :: rest -> (
    match rest with
    | Num f :: rest' ->
      let pairs, rest'' = parse_block rest' in
      ((key, Scalar_num f) :: pairs, rest'')
    | Str s :: rest' ->
      let pairs, rest'' = parse_block rest' in
      ((key, Scalar_str s) :: pairs, rest'')
    | Ident s :: rest' ->
      (* bare-word value (some Zoo files use unquoted identifiers) *)
      let pairs, rest'' = parse_block rest' in
      ((key, Scalar_str s) :: pairs, rest'')
    | Lbracket :: rest' ->
      let inner, rest'' = parse_block rest' in
      let pairs, rest''' = parse_block rest'' in
      ((key, Block inner) :: pairs, rest''')
    | _ -> failwith (Printf.sprintf "Gml: missing value for key %S" key))
  | _ -> failwith "Gml: expected key"

let find_all key pairs = List.filter_map (fun (k, v) -> if k = key then Some v else None) pairs
let find_num key pairs =
  List.find_map (fun (k, v) -> match v with Scalar_num f when k = key -> Some f | _ -> None) pairs
let find_str key pairs =
  List.find_map (fun (k, v) -> match v with Scalar_str s when k = key -> Some s | _ -> None) pairs

let parse_string ?(link_capacity = 1000.) ?(fail_prob = 0.01) ~name s =
  let pairs, _ = parse_block (tokenize s) in
  let graph =
    match find_all "graph" pairs with
    | [ Block g ] -> g
    | [] -> failwith "Gml: no graph block"
    | _ -> failwith "Gml: multiple graph blocks"
  in
  let raw_nodes =
    find_all "node" graph
    |> List.filter_map (function
         | Block np ->
           let id =
             match find_num "id" np with
             | Some f -> int_of_float f
             | None -> failwith "Gml: node without id"
           in
           Some (id, find_str "label" np)
         | _ -> None)
  in
  if raw_nodes = [] then failwith "Gml: graph has no nodes";
  (* GML node ids need not be dense; remap. *)
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) raw_nodes in
  let remap = Hashtbl.create 64 in
  List.iteri (fun dense (gid, _) -> Hashtbl.replace remap gid dense) sorted;
  let node_names =
    Array.of_list
      (List.mapi
         (fun dense (_, label) ->
           match label with Some l -> l | None -> Printf.sprintf "n%d" dense)
         sorted)
  in
  let edges =
    find_all "edge" graph
    |> List.filter_map (function
         | Block ep -> (
           match (find_num "source" ep, find_num "target" ep) with
           | Some s, Some t -> (
             match
               ( Hashtbl.find_opt remap (int_of_float s),
                 Hashtbl.find_opt remap (int_of_float t) )
             with
             | Some a, Some b when a <> b -> Some (min a b, max a b)
             | Some _, Some _ -> None (* drop self loops *)
             | _ -> failwith "Gml: edge references unknown node")
           | _ -> failwith "Gml: edge without source/target")
         | _ -> None)
  in
  (* collapse parallel edges into one LAG per pair *)
  let edges = List.sort_uniq compare edges in
  let lags =
    List.mapi
      (fun id (src, dst) ->
        Lag.make ~id ~src ~dst [ { Lag.link_capacity; fail_prob } ])
      edges
  in
  Topology.create ~node_names ~name ~num_nodes:(Array.length node_names) lags

let load_file ?link_capacity ?fail_prob path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  parse_string ?link_capacity ?fail_prob ~name s
