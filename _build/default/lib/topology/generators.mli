(** Synthetic topology generators.

    These replace the proprietary production topologies in the paper's
    evaluation (see DESIGN.md, substitutions). All generators are
    deterministic given their [seed]. *)

(** The exact four-node example of Figure 1 / §2.1. Nodes A=0, B=1, C=2,
    D=3; single-link LAGs with capacities BD=8, CD=8, AD=9, BA=5, CA=4.
    With demands (B->D, C->D) it reproduces the paper's three scenarios:
    degradation 7 for fixed demands (12, 10); 1 for the naive worst case;
    9 for Raha's joint optimum. *)
val fig1 : unit -> Topology.t

(** [ring n] connects [n] nodes in a cycle. *)
val ring :
  ?links_per_lag:int -> ?link_capacity:float -> ?fail_prob:float -> int -> Topology.t

(** [grid rows cols] is a rows x cols mesh. *)
val grid :
  ?links_per_lag:int -> ?link_capacity:float -> ?fail_prob:float -> int -> int -> Topology.t

(** [random_geometric ~seed ~n ~radius] scatters [n] nodes in the unit
    square, joins pairs within [radius], and adds a spanning tree so the
    result is connected. *)
val random_geometric :
  ?links_per_lag:int ->
  ?link_capacity:float ->
  ?fail_prob:float ->
  seed:int ->
  n:int ->
  radius:float ->
  unit ->
  Topology.t

(** [africa_like ~seed ~n ()] models the continental WAN of §8.1 at a
    configurable scale: a backbone ring of hub cities with spurs and
    cross-links, LAGs of 1-4 links, heterogeneous capacities, and
    per-link failure probabilities spanning two orders of magnitude
    (fiber paths in the synthetic "south" are flakier, mimicking the
    seismic-risk region of the incident in §2). *)
val africa_like : ?seed:int -> ?n:int -> unit -> Topology.t
