(** Embedded public topologies (Topology Zoo / TEAVAR), matching §8.4 and
    Appendix D.2 of the paper.

    [b4] (edge list reconstructed from the published topology figure;
    node/edge counts exact) and [abilene] (the published edge list) are
    the real topologies. [uninett2010] and
    [cogentco] are size-matched synthetic stand-ins (74 nodes / 101 LAGs
    and 197 nodes / 243 LAGs respectively): the real GML files are not
    redistributable here, so we generate connected mesh topologies with
    the same node and edge counts — the properties the paper's
    experiments depend on (see DESIGN.md). Link failure probabilities are
    assigned "based on values from our production network" exactly as the
    paper does for Zoo topologies (§8.1): sampled deterministically from
    the africa-like distribution. *)

(** Google B4 (12 nodes, 19 LAGs). Per Appendix D.2 of the paper, each
    LAG has a single link and the average LAG capacity is 5000. *)
val b4 : unit -> Topology.t

(** Abilene (11 nodes, 14 LAGs). *)
val abilene : unit -> Topology.t

(** Uninett 2010 stand-in (74 nodes, 101 LAGs, avg capacity 1000). *)
val uninett2010 : unit -> Topology.t

(** [uninett2010_reduced ()] is a 20-node contraction used by default in
    the benches so the bundled MILP solver finishes quickly; pass
    [~full:true] to benches to use the 74-node version. *)
val uninett2010_reduced : unit -> Topology.t

(** Cogentco stand-in (197 nodes, 243 LAGs, avg capacity 1000). *)
val cogentco : unit -> Topology.t

(** 24-node contraction of the Cogentco stand-in (see above). *)
val cogentco_reduced : unit -> Topology.t

(** All embedded topologies by name (["b4"; "abilene"; ...]). *)
val by_name : string -> Topology.t option

val names : string list
