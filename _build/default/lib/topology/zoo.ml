(* Failure probabilities for Zoo topologies are not public; like the paper
   (§8.1) we assign values drawn from the production-like distribution,
   deterministically per LAG so runs are reproducible. *)
let assign_probs ~seed ~capacity edges =
  let rng = Random.State.make [| seed |] in
  List.mapi
    (fun id (src, dst) ->
      let fail_prob = 0.001 *. Float.exp (Random.State.float rng 3.) in
      Lag.make ~id ~src ~dst [ { Lag.link_capacity = capacity; fail_prob } ])
    edges

let b4_edges =
  (* Google B4: 12 sites, 19 LAGs. The published counts are exact; the
     edge list is reconstructed from the topology figure (Jain et al.,
     SIGCOMM 2013), so individual adjacencies may differ slightly from
     the TEAVAR distribution. *)
  [
    (0, 1); (0, 2); (1, 2); (1, 3); (2, 4); (2, 5); (3, 4); (3, 6); (4, 5);
    (4, 6); (5, 7); (6, 7); (6, 8); (7, 8); (7, 10); (8, 9); (9, 10); (9, 11);
    (10, 11);
  ]

let b4 () =
  Topology.create ~name:"b4" ~num_nodes:12
    (assign_probs ~seed:41 ~capacity:5000. b4_edges)

let abilene_names =
  [| "Seattle"; "Sunnyvale"; "LosAngeles"; "Denver"; "KansasCity"; "Houston";
     "Indianapolis"; "Chicago"; "Atlanta"; "NewYork"; "Washington" |]

let abilene_edges =
  [
    (0, 1); (0, 3); (1, 3); (1, 2); (2, 5); (3, 4); (4, 5); (4, 6); (5, 8);
    (6, 7); (6, 8); (7, 9); (8, 10); (9, 10);
  ]

let abilene () =
  Topology.create ~node_names:abilene_names ~name:"abilene" ~num_nodes:11
    (assign_probs ~seed:42 ~capacity:9920. abilene_edges)

(* Size-matched mesh stand-in: ring backbone + deterministic chords. *)
let mesh_standin ~name ~seed ~num_nodes ~num_edges ~capacity =
  let rng = Random.State.make [| seed |] in
  let edges = ref [] in
  let mem (a, b) = List.exists (fun (x, y) -> (x = a && y = b) || (x = b && y = a)) !edges in
  for i = 0 to num_nodes - 1 do
    edges := (i, (i + 1) mod num_nodes) :: !edges
  done;
  while List.length !edges < num_edges do
    let a = Random.State.int rng num_nodes in
    let span = 2 + Random.State.int rng (max 1 (num_nodes / 4)) in
    let b = (a + span) mod num_nodes in
    if a <> b && not (mem (a, b)) then edges := (a, b) :: !edges
  done;
  Topology.create ~name ~num_nodes
    (assign_probs ~seed:(seed + 1) ~capacity (List.rev !edges))

let uninett2010 () =
  mesh_standin ~name:"uninett2010" ~seed:74 ~num_nodes:74 ~num_edges:101 ~capacity:1000.

let uninett2010_reduced () =
  mesh_standin ~name:"uninett2010_reduced" ~seed:74 ~num_nodes:20 ~num_edges:28
    ~capacity:1000.

let cogentco () =
  mesh_standin ~name:"cogentco" ~seed:197 ~num_nodes:197 ~num_edges:243 ~capacity:1000.

let cogentco_reduced () =
  mesh_standin ~name:"cogentco_reduced" ~seed:197 ~num_nodes:24 ~num_edges:30
    ~capacity:1000.

let names = [ "b4"; "abilene"; "uninett2010"; "uninett2010_reduced"; "cogentco"; "cogentco_reduced" ]

let by_name = function
  | "b4" -> Some (b4 ())
  | "abilene" -> Some (abilene ())
  | "uninett2010" -> Some (uninett2010 ())
  | "uninett2010_reduced" -> Some (uninett2010_reduced ())
  | "cogentco" -> Some (cogentco ())
  | "cogentco_reduced" -> Some (cogentco_reduced ())
  | _ -> None
