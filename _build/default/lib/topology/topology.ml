type t = {
  tname : string;
  n : int;
  node_names : string array;
  lag_arr : Lag.t array;
  adj : (int * int) list array;
}

let create ?node_names ~name ~num_nodes lag_list =
  if num_nodes <= 0 then invalid_arg "Topology.create: num_nodes <= 0";
  let node_names =
    match node_names with
    | Some a ->
      if Array.length a <> num_nodes then
        invalid_arg "Topology.create: node_names length mismatch";
      a
    | None -> Array.init num_nodes (Printf.sprintf "n%d")
  in
  let lag_arr = Array.of_list lag_list in
  Array.iteri
    (fun i (l : Lag.t) ->
      if l.Lag.lag_id <> i then invalid_arg "Topology.create: LAG ids must be dense";
      if l.Lag.src >= num_nodes || l.Lag.dst >= num_nodes then
        invalid_arg "Topology.create: endpoint out of range")
    lag_arr;
  let adj = Array.make num_nodes [] in
  Array.iter
    (fun (l : Lag.t) ->
      adj.(l.Lag.src) <- (l.Lag.dst, l.Lag.lag_id) :: adj.(l.Lag.src);
      adj.(l.Lag.dst) <- (l.Lag.src, l.Lag.lag_id) :: adj.(l.Lag.dst))
    lag_arr;
  { tname = name; n = num_nodes; node_names; lag_arr; adj }

let name t = t.tname
let num_nodes t = t.n
let num_lags t = Array.length t.lag_arr
let num_links t = Array.fold_left (fun acc l -> acc + Lag.num_links l) 0 t.lag_arr
let lags t = Array.copy t.lag_arr

let lag t i =
  if i < 0 || i >= Array.length t.lag_arr then invalid_arg "Topology.lag";
  t.lag_arr.(i)

let node_name t i =
  if i < 0 || i >= t.n then invalid_arg "Topology.node_name";
  t.node_names.(i)

let node_id t name =
  let rec find i =
    if i >= t.n then raise Not_found
    else if t.node_names.(i) = name then i
    else find (i + 1)
  in
  find 0

let neighbors t v =
  if v < 0 || v >= t.n then invalid_arg "Topology.neighbors";
  t.adj.(v)

let lag_between t u v =
  let candidates =
    List.filter_map (fun (w, id) -> if w = v then Some id else None) (neighbors t u)
  in
  match List.sort compare candidates with
  | [] -> None
  | id :: _ -> Some t.lag_arr.(id)

let avg_lag_capacity t =
  let m = num_lags t in
  if m = 0 then 0.
  else Array.fold_left (fun acc l -> acc +. Lag.capacity l) 0. t.lag_arr /. float_of_int m

let is_connected t =
  let seen = Array.make t.n false in
  let rec dfs v =
    seen.(v) <- true;
    List.iter (fun (w, _) -> if not seen.(w) then dfs w) t.adj.(v)
  in
  dfs 0;
  Array.for_all Fun.id seen

let rebuild t lag_list = create ~node_names:t.node_names ~name:t.tname ~num_nodes:t.n lag_list

let with_lag_links t ~lag_id links =
  let lag_list =
    Array.to_list t.lag_arr
    |> List.map (fun (l : Lag.t) ->
           if l.Lag.lag_id = lag_id then
             Lag.make ~id:lag_id ~src:l.Lag.src ~dst:l.Lag.dst links
           else l)
  in
  rebuild t lag_list

let add_lag t ~src ~dst links =
  let id = num_lags t in
  rebuild t (Array.to_list t.lag_arr @ [ Lag.make ~id ~src ~dst links ])

let add_virtual_gateway t ~name ~attached =
  let vnode = t.n in
  let node_names = Array.append t.node_names [| name |] in
  let next_id = ref (num_lags t) in
  let extra =
    List.map
      (fun (node, capacity) ->
        let id = !next_id in
        incr next_id;
        Lag.make ~id ~src:vnode ~dst:node
          [ { Lag.link_capacity = capacity; fail_prob = 0. } ])
      attached
  in
  let t' =
    create ~node_names ~name:t.tname ~num_nodes:(t.n + 1)
      (Array.to_list t.lag_arr @ extra)
  in
  (t', vnode)

let pp ppf t =
  Format.fprintf ppf "%s: %d nodes, %d LAGs, %d links, avg LAG capacity %g"
    t.tname t.n (num_lags t) (num_links t) (avg_lag_capacity t)
