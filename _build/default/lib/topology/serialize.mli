(** Native text format for topologies.

    GML (Topology Zoo) carries neither LAG structure nor per-link failure
    probabilities, both of which Raha's analysis needs; this simple
    line-oriented format round-trips everything:

    {v
    wan <name>
    nodes <count>
    node <id> <name>
    lag <src> <dst>
    link <capacity> <fail_prob>
    v}

    [node] lines are optional (default names); [link] lines attach to the
    most recent [lag]. Lines starting with [#] are comments. *)

val to_string : Topology.t -> string

(** @raise Failure with a [line N: ...] message on malformed input. *)
val of_string : string -> Topology.t

val save : Topology.t -> string -> unit
val load : string -> Topology.t
