lib/topology/zoo.mli: Topology
