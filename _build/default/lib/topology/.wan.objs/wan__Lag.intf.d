lib/topology/lag.mli: Format
