lib/topology/serialize.mli: Topology
