lib/topology/serialize.ml: Array Buffer Fun Lag List Printf String Topology
