lib/topology/topology.mli: Format Lag
