lib/topology/generators.mli: Topology
