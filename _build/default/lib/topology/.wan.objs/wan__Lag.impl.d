lib/topology/lag.ml: Array Format List
