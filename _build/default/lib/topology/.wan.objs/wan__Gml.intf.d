lib/topology/gml.mli: Topology
