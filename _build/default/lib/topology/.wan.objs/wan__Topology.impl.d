lib/topology/topology.ml: Array Format Fun Lag List Printf
