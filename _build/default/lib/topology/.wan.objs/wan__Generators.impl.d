lib/topology/generators.ml: Array Float Fun Lag List Printf Random Topology
