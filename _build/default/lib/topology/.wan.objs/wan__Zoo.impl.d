lib/topology/zoo.ml: Float Lag List Random Topology
