lib/topology/gml.ml: Array Buffer Filename Hashtbl Lag List Printf String Topology
