(** Parser for the GML subset used by the Internet Topology Zoo, so real
    Zoo files can be dropped in next to the embedded stand-ins.

    Supports [graph [ node [ id .. label .. ] edge [ source .. target .. ] ]]
    with arbitrary extra key/value attributes (skipped), nested blocks,
    quoted strings, comments and multi-edges (parallel edges collapse
    into one LAG per node pair). *)

(** [parse_string ~name ?link_capacity ?fail_prob s] parses GML text.
    Each surviving edge becomes a single-link LAG.
    @raise Failure with a line-oriented message on malformed input. *)
val parse_string :
  ?link_capacity:float -> ?fail_prob:float -> name:string -> string -> Topology.t

(** [load_file ?link_capacity ?fail_prob path] reads and parses a file;
    the topology is named after the file's basename. *)
val load_file : ?link_capacity:float -> ?fail_prob:float -> string -> Topology.t
