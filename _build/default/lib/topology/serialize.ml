let to_string t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "wan %s\n" (Topology.name t));
  Buffer.add_string b (Printf.sprintf "nodes %d\n" (Topology.num_nodes t));
  for v = 0 to Topology.num_nodes t - 1 do
    Buffer.add_string b (Printf.sprintf "node %d %s\n" v (Topology.node_name t v))
  done;
  Array.iter
    (fun (lag : Lag.t) ->
      Buffer.add_string b (Printf.sprintf "lag %d %d\n" lag.Lag.src lag.Lag.dst);
      Array.iter
        (fun (l : Lag.link) ->
          Buffer.add_string b
            (Printf.sprintf "link %.17g %.17g\n" l.Lag.link_capacity l.Lag.fail_prob))
        lag.Lag.links)
    (Topology.lags t);
  Buffer.contents b

type parse_state = {
  mutable pname : string;
  mutable n : int;
  mutable names : (int * string) list;
  mutable lags : (int * int * Lag.link list) list; (* reverse order; links reversed *)
}

let of_string s =
  let st = { pname = "wan"; n = -1; names = []; lags = [] } in
  let err lineno msg = failwith (Printf.sprintf "line %d: %s" lineno msg) in
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
        | [ "wan"; name ] -> st.pname <- name
        | "wan" :: rest -> st.pname <- String.concat " " rest
        | [ "nodes"; n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> st.n <- n
          | _ -> err lineno "bad node count")
        | "node" :: id :: rest -> (
          match int_of_string_opt id with
          | Some id -> st.names <- (id, String.concat " " rest) :: st.names
          | None -> err lineno "bad node id")
        | [ "lag"; a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b -> st.lags <- (a, b, []) :: st.lags
          | _ -> err lineno "bad lag endpoints")
        | [ "link"; cap; prob ] -> (
          match (float_of_string_opt cap, float_of_string_opt prob) with
          | Some cap, Some prob -> (
            match st.lags with
            | (a, b, links) :: rest ->
              st.lags <- (a, b, { Lag.link_capacity = cap; fail_prob = prob } :: links) :: rest
            | [] -> err lineno "link before any lag")
          | _ -> err lineno "bad link fields")
        | _ -> err lineno (Printf.sprintf "unrecognized line %S" line))
    lines;
  if st.n <= 0 then failwith "missing 'nodes' line";
  let node_names =
    Array.init st.n (fun v ->
        match List.assoc_opt v st.names with Some name -> name | None -> Printf.sprintf "n%d" v)
  in
  let lags =
    List.rev st.lags
    |> List.mapi (fun id (a, b, links) ->
           if links = [] then failwith (Printf.sprintf "lag %d-%d has no links" a b);
           Lag.make ~id ~src:a ~dst:b (List.rev links))
  in
  Topology.create ~node_names ~name:st.pname ~num_nodes:st.n lags

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
