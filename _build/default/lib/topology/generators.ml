let single_link capacity fail_prob = [ { Lag.link_capacity = capacity; fail_prob } ]

let fig1 () =
  let names = [| "A"; "B"; "C"; "D" |] in
  let mk id src dst cap = Lag.make ~id ~src ~dst (single_link cap 0.01) in
  Topology.create ~node_names:names ~name:"fig1" ~num_nodes:4
    [
      mk 0 1 3 8. (* BD *);
      mk 1 2 3 8. (* CD *);
      mk 2 0 3 9. (* AD *);
      mk 3 1 0 5. (* BA *);
      mk 4 2 0 4. (* CA *);
    ]

let uniform_lags ~links_per_lag ~link_capacity ~fail_prob edges =
  List.mapi
    (fun id (src, dst) ->
      Lag.uniform ~id ~src ~dst ~n:links_per_lag ~capacity:link_capacity ~fail_prob)
    edges

let ring ?(links_per_lag = 1) ?(link_capacity = 100.) ?(fail_prob = 0.01) n =
  if n < 3 then invalid_arg "Generators.ring: n < 3";
  let edges = List.init n (fun i -> (i, (i + 1) mod n)) in
  Topology.create ~name:(Printf.sprintf "ring%d" n) ~num_nodes:n
    (uniform_lags ~links_per_lag ~link_capacity ~fail_prob edges)

let grid ?(links_per_lag = 1) ?(link_capacity = 100.) ?(fail_prob = 0.01) rows cols =
  if rows < 1 || cols < 1 || rows * cols < 2 then invalid_arg "Generators.grid";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Topology.create
    ~name:(Printf.sprintf "grid%dx%d" rows cols)
    ~num_nodes:(rows * cols)
    (uniform_lags ~links_per_lag ~link_capacity ~fail_prob (List.rev !edges))

let random_geometric ?(links_per_lag = 1) ?(link_capacity = 100.) ?(fail_prob = 0.01)
    ~seed ~n ~radius () =
  if n < 2 then invalid_arg "Generators.random_geometric: n < 2";
  let rng = Random.State.make [| seed |] in
  let xs = Array.init n (fun _ -> Random.State.float rng 1.) in
  let ys = Array.init n (fun _ -> Random.State.float rng 1.) in
  let dist i j = Float.hypot (xs.(i) -. xs.(j)) (ys.(i) -. ys.(j)) in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if dist i j <= radius then edges := (i, j) :: !edges
    done
  done;
  (* Connect components with nearest-neighbor bridges (simple union-find). *)
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j = parent.(find i) <- find j in
  List.iter (fun (i, j) -> union i j) !edges;
  for i = 1 to n - 1 do
    if find i <> find 0 then begin
      (* bridge node i's component to the closest node in another component *)
      let best = ref (-1) and bestd = ref infinity in
      for j = 0 to n - 1 do
        if find j <> find i && dist i j < !bestd then begin
          best := j;
          bestd := dist i j
        end
      done;
      edges := (i, !best) :: !edges;
      union i !best
    end
  done;
  Topology.create
    ~name:(Printf.sprintf "rgg%d" n)
    ~num_nodes:n
    (uniform_lags ~links_per_lag ~link_capacity ~fail_prob (List.rev !edges))

let africa_like ?(seed = 7) ?(n = 12) () =
  if n < 6 then invalid_arg "Generators.africa_like: n < 6";
  let rng = Random.State.make [| seed; n |] in
  let n_hubs = max 4 (n / 3) in
  (* Backbone ring over hubs; spurs attach the remaining nodes to 2 hubs
     each (so no node is single-homed); a few cross-links over the ring. *)
  let edges = ref [] in
  for h = 0 to n_hubs - 1 do
    edges := (h, (h + 1) mod n_hubs) :: !edges
  done;
  for v = n_hubs to n - 1 do
    let a = Random.State.int rng n_hubs in
    let b = (a + 1 + Random.State.int rng (n_hubs - 1)) mod n_hubs in
    edges := (v, a) :: (v, b) :: !edges
  done;
  let n_cross = max 1 (n_hubs / 3) in
  for _ = 1 to n_cross do
    let a = Random.State.int rng n_hubs in
    let b = (a + 2 + Random.State.int rng (max 1 (n_hubs - 3))) mod n_hubs in
    if a <> b && List.for_all (fun (x, y) -> not ((x = a && y = b) || (x = b && y = a))) !edges
    then edges := (a, b) :: !edges
  done;
  let mk_lag id (src, dst) =
    let is_backbone = src < n_hubs && dst < n_hubs in
    let n_links = if is_backbone then 2 + Random.State.int rng 3 else 1 + Random.State.int rng 2 in
    (* The synthetic "south" (upper node ids) sits on flaky fiber paths. *)
    let south = src >= (3 * n) / 4 || dst >= (3 * n) / 4 in
    let base_prob = if south then 0.02 else 0.002 in
    let links =
      List.init n_links (fun _ ->
          {
            Lag.link_capacity = (if is_backbone then 100. else 50.);
            fail_prob = base_prob *. (0.5 +. Random.State.float rng 1.5);
          })
    in
    Lag.make ~id ~src ~dst links
  in
  let lags = List.mapi mk_lag (List.rev !edges) in
  Topology.create ~name:(Printf.sprintf "africa%d" n) ~num_nodes:n lags
