type summary = {
  samples : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max_seen : float;
  worst_scenario : Failure.Scenario.t;
}

let sample_scenario rng topo =
  let links = ref [] in
  Array.iter
    (fun (lag : Wan.Lag.t) ->
      Array.iteri
        (fun i (l : Wan.Lag.link) ->
          if l.Wan.Lag.fail_prob > 0. && Random.State.float rng 1. < l.Wan.Lag.fail_prob
          then links := (lag.Wan.Lag.lag_id, i) :: !links)
        lag.Wan.Lag.links)
    (Wan.Topology.lags topo);
  Failure.Scenario.of_links topo !links

let sample_degradations ?(objective = Formulation.Total_flow) ~seed ~samples topo paths
    demand =
  if samples <= 0 then invalid_arg "Monte_carlo.sample_degradations: samples <= 0";
  let rng = Random.State.make [| seed |] in
  let healthy =
    match Simulate.healthy ~objective topo paths demand with
    | Some h -> h
    | None -> invalid_arg "Monte_carlo: healthy network cannot route the demand"
  in
  let degradations = Array.make samples 0. in
  let scenarios = Array.make samples Failure.Scenario.empty in
  for i = 0 to samples - 1 do
    let s = sample_scenario rng topo in
    scenarios.(i) <- s;
    degradations.(i) <-
      (match Simulate.route ~objective ~healthy topo paths demand s with
      | Some f -> (
        match objective with
        | Formulation.Mlu _ -> f.Simulate.performance -. healthy.Simulate.performance
        | Formulation.Total_flow | Formulation.Max_min _ ->
          healthy.Simulate.performance -. f.Simulate.performance)
      | None -> healthy.Simulate.performance)
  done;
  (degradations, scenarios)

let summarize degradations scenarios =
  let n = Array.length degradations in
  if n = 0 || Array.length scenarios <> n then invalid_arg "Monte_carlo.summarize";
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> compare degradations.(a) degradations.(b)) idx;
  let at q =
    let i = min (n - 1) (int_of_float (Float.of_int n *. q)) in
    degradations.(idx.(i))
  in
  let worst = idx.(n - 1) in
  {
    samples = n;
    mean = Array.fold_left ( +. ) 0. degradations /. float_of_int n;
    p50 = at 0.5;
    p95 = at 0.95;
    p99 = at 0.99;
    max_seen = degradations.(worst);
    worst_scenario = scenarios.(worst);
  }

let prob_degradation_above degradations x =
  let n = Array.length degradations in
  if n = 0 then 0.
  else begin
    let count = Array.fold_left (fun acc d -> if d > x then acc + 1 else acc) 0 degradations in
    float_of_int count /. float_of_int n
  end

let pp_summary ppf s =
  Format.fprintf ppf
    "%d samples: mean %.3g, p50 %.3g, p95 %.3g, p99 %.3g, max %.3g (scenario %a)"
    s.samples s.mean s.p50 s.p95 s.p99 s.max_seen Failure.Scenario.pp s.worst_scenario
