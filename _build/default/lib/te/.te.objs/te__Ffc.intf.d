lib/te/ffc.mli: Failure Netpath Traffic Wan
