lib/te/lp_spec.ml: Array List Milp
