lib/te/simulate.ml: Array Failure Float Formulation List Lp_spec Netpath Printf Traffic Wan
