lib/te/edge_form.mli: Traffic Wan
