lib/te/formulation.mli: Lp_spec Milp Netpath Wan
