lib/te/edge_form.ml: Array Hashtbl List Milp Printf Traffic Wan
