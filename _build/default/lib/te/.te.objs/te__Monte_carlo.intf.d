lib/te/monte_carlo.mli: Failure Format Formulation Netpath Traffic Wan
