lib/te/ffc.ml: Array Failure Float List Milp Netpath Option Printf Simulate Traffic Wan
