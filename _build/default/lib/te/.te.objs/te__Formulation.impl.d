lib/te/formulation.ml: Array Float List Lp_spec Milp Netpath Option Printf Wan
