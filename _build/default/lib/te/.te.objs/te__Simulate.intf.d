lib/te/simulate.mli: Failure Formulation Netpath Traffic Wan
