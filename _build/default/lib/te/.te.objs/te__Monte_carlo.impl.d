lib/te/monte_carlo.ml: Array Failure Float Format Formulation Fun Random Simulate Wan
