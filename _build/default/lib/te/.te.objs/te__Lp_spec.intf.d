lib/te/lp_spec.mli: Milp
