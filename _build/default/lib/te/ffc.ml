type result = {
  granted : ((int * int) * float) list;
  total_granted : float;
  total_demand : float;
  scenarios_considered : int;
}

let evar (v : Milp.Model.var) = Milp.Linexpr.var v.Milp.Model.vid

let allocate ~k topo paths demand =
  if k < 0 then invalid_arg "Ffc.allocate: k < 0";
  let scenarios = Failure.Enumerate.lag_failures_up_to_k topo ~k in
  if List.length scenarios > 20_000 then
    invalid_arg "Ffc.allocate: too many scenarios — reduce k or the topology";
  let m = Milp.Model.create ~name:"ffc" () in
  (* granted bandwidth per pair *)
  let grants =
    List.mapi
      (fun i (p : Netpath.Path_set.pair) ->
        let d =
          Traffic.Demand.volume demand ~src:p.Netpath.Path_set.src
            ~dst:p.Netpath.Path_set.dst
        in
        (i, p, Milp.Model.continuous ~ub:d m (Printf.sprintf "b%d" i), d))
      paths
  in
  (* one routing copy per scenario *)
  List.iteri
    (fun si scenario ->
      let avail =
        Array.of_list
          (List.map (fun p -> Simulate.availability topo p scenario) paths)
      in
      let flow_vars =
        List.map
          (fun (i, (p : Netpath.Path_set.pair), b, _) ->
            let all = Array.of_list (Netpath.Path_set.all_paths p) in
            let fs =
              Array.mapi
                (fun j path ->
                  if
                    avail.(i).(j)
                    && not
                         (Failure.Scenario.path_down topo scenario
                            (Netpath.Path.lag_list path))
                  then Some (Milp.Model.continuous m (Printf.sprintf "f_s%d_k%d_p%d" si i j), path)
                  else None)
                all
            in
            (* grant must be routable in this scenario *)
            let terms =
              Array.to_list fs |> List.filter_map (Option.map (fun (v, _) -> evar v))
            in
            (if terms <> [] then
               Milp.Model.add_cons_expr m
                 ~name:(Printf.sprintf "grant_s%d_k%d" si i)
                 (Milp.Linexpr.sum terms) Milp.Model.Ge (evar b)
             else
               (* no surviving path: grant forced to zero *)
               Milp.Model.add_cons m
                 ~name:(Printf.sprintf "cut_s%d_k%d" si i)
                 (evar b) Milp.Model.Le 0.);
            fs)
          grants
      in
      (* scenario capacities *)
      Array.iter
        (fun (lag : Wan.Lag.t) ->
          let e = lag.Wan.Lag.lag_id in
          let terms = ref [] in
          List.iter
            (Array.iter (function
              | Some (v, path) ->
                if Netpath.Path.mem_lag path e then
                  terms := (1., v.Milp.Model.vid) :: !terms
              | None -> ()))
            flow_vars;
          if !terms <> [] then
            Milp.Model.add_cons m
              ~name:(Printf.sprintf "cap_s%d_e%d" si e)
              (Milp.Linexpr.of_terms !terms)
              Milp.Model.Le
              (Failure.Scenario.lag_capacity topo scenario e))
        (Wan.Topology.lags topo))
    scenarios;
  Milp.Model.set_objective m Milp.Model.Maximize
    (Milp.Linexpr.sum (List.map (fun (_, _, b, _) -> evar b) grants));
  match Milp.Simplex.solve m with
  | Milp.Simplex.Optimal { obj; values } ->
    let granted =
      List.map
        (fun (_, (p : Netpath.Path_set.pair), b, _) ->
          ((p.Netpath.Path_set.src, p.Netpath.Path_set.dst), values.(b.Milp.Model.vid)))
        grants
    in
    Some
      {
        granted;
        total_granted = obj;
        total_demand = Traffic.Demand.total demand;
        scenarios_considered = List.length scenarios;
      }
  | Milp.Simplex.Infeasible | Milp.Simplex.Unbounded | Milp.Simplex.Iter_limit -> None

let grant_to_demand r =
  Traffic.Demand.of_list (List.map (fun (p, v) -> (p, Float.max 0. v)) r.granted)

let verify ~k topo paths r =
  let grant = grant_to_demand r in
  let routable scenario =
    match Simulate.route topo paths grant scenario with
    | Some res -> res.Simulate.performance +. 1e-6 >= r.total_granted
    | None -> false
  in
  List.find_opt
    (fun s -> not (routable s))
    (Failure.Enumerate.lag_failures_up_to_k topo ~k)
