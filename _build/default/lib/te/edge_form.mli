(** Edge-formulation multi-commodity flow (Appendix C).

    Flow variables live on (demand, LAG, direction) triples with
    per-node conservation (Eq. 6) instead of on paths; every path is
    implicitly available, so the optimum upper-bounds what any path-form
    TE can route. New-LAG capacity augmentation uses this form because
    adding a LAG changes the path set. *)

type result = {
  total : float;
  per_pair : ((int * int) * float) list;  (** flow delivered per pair *)
}

(** [max_total_flow ?restrict topo demand ~lag_cap] maximizes total
    delivered flow. [lag_cap e] is LAG [e]'s capacity. [restrict ~pair e]
    (default: always [true]) limits which LAGs each pair may use —
    Appendix C tightens the edge form by restricting a demand to LAGs on
    its pre-failure paths plus candidate new LAGs. Returns [None] on an
    infeasible/degenerate instance. *)
val max_total_flow :
  ?restrict:(pair:int * int -> int -> bool) ->
  Wan.Topology.t ->
  Traffic.Demand.t ->
  lag_cap:(int -> float) ->
  result option
