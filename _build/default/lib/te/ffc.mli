(** FFC-style robust bandwidth allocation (Liu et al., SIGCOMM 2014) —
    the "resilient to up to k failures" planning approach of §2.2.

    Grants each pair a bandwidth [b_k <= demand_k] such that under {e
    any} simultaneous failure of at most [k] LAGs, the granted bandwidths
    remain simultaneously routable over the surviving configured paths.
    Exact scenario-enumeration formulation: one routing copy per <=k-LAG
    failure scenario (tractable at the scales this repo runs; FFC's
    production encoding compresses the scenarios, ours keeps their exact
    semantics).

    Raha's §2.2 point is then observable: the grant is safe for <=k
    failures by construction, yet probable scenarios beyond [k] still
    degrade it — see the [ffc] bench. *)

type result = {
  granted : ((int * int) * float) list;  (** per-pair protected bandwidth *)
  total_granted : float;
  total_demand : float;
  scenarios_considered : int;
}

(** [allocate ~k topo paths demand] maximizes the total granted
    bandwidth. [None] if even the empty scenario cannot route anything
    (degenerate inputs).
    @raise Invalid_argument if the scenario count explodes (> 20_000). *)
val allocate :
  k:int ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Demand.t ->
  result option

(** [grant_to_demand r] is the granted allocation as a demand matrix. *)
val grant_to_demand : result -> Traffic.Demand.t

(** [verify ~k topo paths r] replays every <=k-LAG failure scenario in
    the simulator and checks the grant stays routable; returns the first
    violating scenario if any (used by tests, and by operators as a
    sanity check). *)
val verify :
  k:int -> Wan.Topology.t -> Netpath.Path_set.t -> result -> Failure.Scenario.t option
