type rel = Le | Eq

type rhs = Const of float | Outer of Milp.Linexpr.t

type col = { cname : string; obj : float; ub_hint : float }

type row = {
  rname : string;
  terms : (int * float) list;
  rel : rel;
  rhs : rhs;
  slack_bound : float;
}

type sense = Max | Min

type t = { sense : sense; cols : col array; rows : row array; dual_bound : float }

let objective_value t xs =
  let acc = ref 0. in
  Array.iteri (fun i c -> acc := !acc +. (c.obj *. xs.(i))) t.cols;
  !acc

let resolve_rhs ?eval rhs =
  match (rhs, eval) with
  | Const c, _ -> c
  | Outer e, Some f -> f e
  | Outer _, None -> invalid_arg "Lp_spec: Outer rhs needs an evaluator"

let to_model ?eval t =
  let m = Milp.Model.create ~name:"lp_spec" () in
  let vars =
    Array.map (fun c -> Milp.Model.continuous m c.cname) t.cols
  in
  Array.iter
    (fun r ->
      let lhs =
        Milp.Linexpr.of_terms
          (List.map (fun (ci, coef) -> (coef, vars.(ci).Milp.Model.vid)) r.terms)
      in
      let rel = match r.rel with Le -> Milp.Model.Le | Eq -> Milp.Model.Eq in
      Milp.Model.add_cons m ~name:r.rname lhs rel (resolve_rhs ?eval r.rhs))
    t.rows;
  let obj =
    Milp.Linexpr.of_terms
      (Array.to_list (Array.mapi (fun i c -> (c.obj, vars.(i).Milp.Model.vid)) t.cols))
  in
  let sense = match t.sense with Max -> Milp.Model.Maximize | Min -> Milp.Model.Minimize in
  Milp.Model.set_objective m sense obj;
  (m, vars)

let solve ?eval t =
  let m, _vars = to_model ?eval t in
  match Milp.Simplex.solve m with
  | Milp.Simplex.Optimal { obj; values } ->
    `Optimal (obj, Array.sub values 0 (Array.length t.cols))
  | Milp.Simplex.Infeasible -> `Infeasible
  | Milp.Simplex.Unbounded -> `Unbounded
  | Milp.Simplex.Iter_limit -> failwith "Lp_spec.solve: simplex iteration limit"
