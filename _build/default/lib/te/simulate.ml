type reaction = Optimal_failover | Naive_failover

type result = {
  performance : float;
  flows : float array;
  index : Formulation.index;
}

let availability topo (pair : Netpath.Path_set.pair) scenario =
  let all = Array.of_list (Netpath.Path_set.all_paths pair) in
  let n_primary = Netpath.Path_set.num_primary pair in
  let down =
    Array.map
      (fun p -> Failure.Scenario.path_down topo scenario (Netpath.Path.lag_list p))
      all
  in
  let failed_before = Array.make (Array.length all) 0 in
  for j = 1 to Array.length all - 1 do
    failed_before.(j) <- failed_before.(j - 1) + (if down.(j - 1) then 1 else 0)
  done;
  Array.mapi (fun j _ -> failed_before.(j) + n_primary - j - 1 >= 0) all

let d_max_of demand =
  List.fold_left (fun acc (_, v) -> Float.max acc v) 1. (Traffic.Demand.entries demand)

let route ?(objective = Formulation.Total_flow) ?(reaction = Optimal_failover) ?healthy
    topo paths demand scenario =
  let d_max = d_max_of demand in
  let lag_cap e = Formulation.C (Failure.Scenario.lag_capacity topo scenario e) in
  let lag_cap =
    match objective with
    | Formulation.Mlu _ ->
      (* Appendix A: MLU keeps capacity rows constant; failures act via
         path availability only *)
      fun e -> Formulation.C (Wan.Lag.capacity (Wan.Topology.lag topo e))
    | Formulation.Total_flow | Formulation.Max_min _ -> lag_cap
  in
  let avail =
    Array.of_list (List.map (fun p -> availability topo p scenario) paths)
  in
  (* In MLU mode the capacity rows stay constant (Appendix A), so a down
     path must additionally be blocked through its extension capacity;
     for the other objectives a down LAG's zero capacity already blocks
     it. *)
  let is_mlu = match objective with Formulation.Mlu _ -> true | _ -> false in
  let down =
    Array.of_list
      (List.map
         (fun (p : Netpath.Path_set.pair) ->
           Array.of_list
             (List.map
                (fun path ->
                  Failure.Scenario.path_down topo scenario (Netpath.Path.lag_list path))
                (Netpath.Path_set.all_paths p)))
         paths)
  in
  let path_cap ~pair ~path =
    let blocked =
      (not avail.(pair).(path)) || (is_mlu && down.(pair).(path))
    in
    if blocked then Some (Formulation.C 0.) else None
  in
  let demand_f ~src ~dst = Formulation.C (Traffic.Demand.volume demand ~src ~dst) in
  let spec, index =
    Formulation.build ~objective ~topo ~paths ~lag_cap ~demand:demand_f ~path_cap ~d_max ()
  in
  let spec =
    match (reaction, healthy) with
    | Optimal_failover, _ -> spec
    | Naive_failover, None -> invalid_arg "Simulate.route: naive fail-over needs healthy flows"
    | Naive_failover, Some h ->
      (* primaries capped by their healthy flow; the r-th backup capped by
         the r-th primary's healthy flow (§5.1) *)
      let extra = ref [] in
      Array.iteri
        (fun k (pc : Formulation.pair_cols) ->
          let hpc = h.index.Formulation.pair_arr.(k) in
          Array.iteri
            (fun j col ->
              let cap_col =
                if j < pc.Formulation.n_primary then Some j
                else begin
                  let r = j - pc.Formulation.n_primary in
                  if r < pc.Formulation.n_primary then Some r else None
                end
              in
              match cap_col with
              | None -> ()
              | Some jh ->
                let healthy_flow = h.flows.(hpc.Formulation.path_cols.(jh)) in
                extra :=
                  {
                    Lp_spec.rname = Printf.sprintf "naive_k%d_p%d" k j;
                    terms = [ (col, 1.) ];
                    rel = Lp_spec.Le;
                    rhs = Lp_spec.Const healthy_flow;
                    slack_bound = d_max;
                  }
                  :: !extra)
            pc.Formulation.path_cols)
        index.Formulation.pair_arr;
      Formulation.add_rows spec !extra
  in
  match Lp_spec.solve spec with
  | `Optimal (_, xs) ->
    Some { performance = Formulation.performance objective index xs; flows = xs; index }
  | `Infeasible -> None
  | `Unbounded -> failwith "Simulate.route: unbounded TE LP"

let healthy ?objective topo paths demand =
  route ?objective topo paths demand Failure.Scenario.empty

let degradation ?(objective = Formulation.Total_flow) ?reaction topo paths demand scenario =
  match healthy ~objective topo paths demand with
  | None -> None
  | Some h -> (
    let failed = route ~objective ?reaction ~healthy:h topo paths demand scenario in
    match failed with
    | None -> None
    | Some f -> (
      match objective with
      | Formulation.Total_flow | Formulation.Max_min _ ->
        Some (h.performance -. f.performance)
      | Formulation.Mlu _ -> Some (f.performance -. h.performance)))
