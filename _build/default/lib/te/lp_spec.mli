(** Solver-independent description of a TE linear program.

    The same specification serves two consumers:
    - {!Te.Simulate} instantiates it as a standalone LP (all right-hand
      sides constant) to route traffic directly — the oracle/baseline
      path;
    - [Raha.Kkt] embeds it as the {e inner} problem of the bi-level
      MILP, where right-hand sides may be affine expressions over the
      {e outer} model's variables (variable LAG capacities, demands, path
      extension capacities — §5 of the paper).

    Rows are normalized to [<=] or [=]; columns are nonnegative. Each row
    carries a bound on its slack and the spec carries a bound on optimal
    dual magnitudes — these become the big-M constants of the KKT
    complementary-slackness linearization, so they must be valid but
    should be tight. *)

type rel = Le | Eq

type rhs =
  | Const of float
  | Outer of Milp.Linexpr.t
      (** affine in the outer model's variables; treated as a constant by
          the inner problem (the blue variables of Table 2) *)

type col = {
  cname : string;
  obj : float;  (** objective coefficient *)
  ub_hint : float;
      (** valid upper bound on the column's value at optimal points
          (columns are nonnegative); a KKT big-M constant *)
}

type row = {
  rname : string;
  terms : (int * float) list;  (** (column index, coefficient) *)
  rel : rel;
  rhs : rhs;
  slack_bound : float;  (** valid upper bound on [rhs - lhs] at feasible points *)
}

type sense = Max | Min

type t = {
  sense : sense;
  cols : col array;
  rows : row array;
  dual_bound : float;
      (** some optimal dual solution has all multipliers within
          [[-dual_bound, dual_bound]] *)
}

(** [objective_value t xs] evaluates the objective at a column valuation. *)
val objective_value : t -> float array -> float

(** [to_model ?eval t] builds a standalone {!Milp.Model} (continuous
    columns). [eval] resolves [Outer] right-hand sides to constants;
    omitting it raises on [Outer] rows. Returns the model and the column
    variables. *)
val to_model :
  ?eval:(Milp.Linexpr.t -> float) -> t -> Milp.Model.t * Milp.Model.var array

(** [solve ?eval t] solves the standalone LP. *)
val solve :
  ?eval:(Milp.Linexpr.t -> float) ->
  t ->
  [ `Optimal of float * float array | `Infeasible | `Unbounded ]
