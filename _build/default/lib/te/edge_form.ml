type result = { total : float; per_pair : ((int * int) * float) list }

let max_total_flow ?(restrict = fun ~pair:_ _ -> true) topo demand ~lag_cap =
  let m = Milp.Model.create ~name:"edge_form" () in
  let entries = Traffic.Demand.entries demand in
  let lags = Wan.Topology.lags topo in
  (* flow variables per (pair, lag, direction); direction 0 = src->dst of
     the LAG's endpoints, 1 = reverse *)
  let fvar = Hashtbl.create 256 in
  List.iteri
    (fun k ((s, d), _) ->
      Array.iter
        (fun (lag : Wan.Lag.t) ->
          let e = lag.Wan.Lag.lag_id in
          if restrict ~pair:(s, d) e then begin
            let v0 =
              Milp.Model.continuous m (Printf.sprintf "f_k%d_e%d_f" k e)
            in
            let v1 =
              Milp.Model.continuous m (Printf.sprintf "f_k%d_e%d_r" k e)
            in
            Hashtbl.replace fvar (k, e) (v0, v1)
          end)
        lags)
    entries;
  (* delivered flow per pair *)
  let deliver =
    List.mapi
      (fun k ((s, d), vol) ->
        let fk = Milp.Model.continuous ~ub:vol m (Printf.sprintf "fk%d" k) in
        ((s, d), k, fk))
      entries
  in
  (* conservation per (pair, node) *)
  let n = Wan.Topology.num_nodes topo in
  List.iter
    (fun ((s, d), k, fk) ->
      for v = 0 to n - 1 do
        (* sum of flow into v minus flow out of v *)
        let expr = ref Milp.Linexpr.zero in
        Array.iter
          (fun (lag : Wan.Lag.t) ->
            match Hashtbl.find_opt fvar (k, lag.Wan.Lag.lag_id) with
            | None -> ()
            | Some (v0, v1) ->
              (* v0 carries src->dst, v1 carries dst->src *)
              if lag.Wan.Lag.dst = v then
                expr := Milp.Linexpr.add_term !expr 1. v0.Milp.Model.vid;
              if lag.Wan.Lag.src = v then
                expr := Milp.Linexpr.add_term !expr (-1.) v0.Milp.Model.vid;
              if lag.Wan.Lag.src = v then
                expr := Milp.Linexpr.add_term !expr 1. v1.Milp.Model.vid;
              if lag.Wan.Lag.dst = v then
                expr := Milp.Linexpr.add_term !expr (-1.) v1.Milp.Model.vid)
          lags;
        let net =
          if v = d then Milp.Linexpr.var fk.Milp.Model.vid
          else if v = s then Milp.Linexpr.var ~coeff:(-1.) fk.Milp.Model.vid
          else Milp.Linexpr.zero
        in
        Milp.Model.add_cons_expr m
          ~name:(Printf.sprintf "cons_k%d_v%d" k v)
          !expr Milp.Model.Eq net
      done)
    deliver;
  (* LAG capacities: both directions share the bundle *)
  Array.iter
    (fun (lag : Wan.Lag.t) ->
      let e = lag.Wan.Lag.lag_id in
      let expr = ref Milp.Linexpr.zero in
      List.iteri
        (fun k _ ->
          match Hashtbl.find_opt fvar (k, e) with
          | None -> ()
          | Some (v0, v1) ->
            expr := Milp.Linexpr.add_term !expr 1. v0.Milp.Model.vid;
            expr := Milp.Linexpr.add_term !expr 1. v1.Milp.Model.vid)
        entries;
      if not (Milp.Linexpr.is_constant !expr) then
        Milp.Model.add_cons m ~name:(Printf.sprintf "cap_e%d" e) !expr Milp.Model.Le
          (lag_cap e))
    lags;
  let obj =
    Milp.Linexpr.sum
      (List.map (fun (_, _, fk) -> Milp.Linexpr.var fk.Milp.Model.vid) deliver)
  in
  Milp.Model.set_objective m Milp.Model.Maximize obj;
  match Milp.Simplex.solve m with
  | Milp.Simplex.Optimal { obj; values } ->
    let per_pair =
      List.map (fun (pair, _, fk) -> (pair, values.(fk.Milp.Model.vid))) deliver
    in
    Some { total = obj; per_pair }
  | Milp.Simplex.Infeasible | Milp.Simplex.Unbounded | Milp.Simplex.Iter_limit -> None
