(* Clustering (Algorithm 1), capacity augmentation (§7), the alert
   pipeline and the evaluation baselines. *)

let check_int = Alcotest.(check int)
let check_float ?(eps = 1e-5) what expected got =
  Alcotest.(check (float eps)) what expected got

let fig1 = Wan.Generators.fig1 ()

let fig1_paths () =
  Netpath.Path_set.compute ~n_primary:2 ~n_backup:0 fig1 [ (1, 3); (2, 3) ]

let fig1_envelope () =
  Traffic.Envelope.around ~slack:0.5
    (Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ])

let spec_k1 =
  {
    Raha.Bilevel.default_spec with
    Raha.Bilevel.max_failures = Some 1;
    encoding = Raha.Bilevel.Strong_duality { levels = 5 };
  }

(* --- clustering -------------------------------------------------------- *)

let test_partition () =
  let topo = Wan.Generators.africa_like ~seed:3 ~n:12 () in
  let assign = Raha.Cluster.partition topo ~clusters:3 in
  check_int "covers all nodes" 12 (Array.length assign);
  let ids = Array.to_list assign |> List.sort_uniq compare in
  check_int "three clusters" 3 (List.length ids);
  Alcotest.(check bool) "ids in range" true (List.for_all (fun c -> c >= 0 && c < 3) ids);
  (* more clusters than nodes degrade gracefully *)
  let small = Raha.Cluster.partition fig1 ~clusters:10 in
  Alcotest.(check bool) "clamped" true (Array.for_all (fun c -> c >= 0 && c < 4) small)

let test_cluster_analysis_reaches_optimum_on_fig1 () =
  (* fig1 is small enough that clustering should not lose anything *)
  let options = { Raha.Analysis.default_options with spec = spec_k1 } in
  let r =
    Raha.Cluster.analyze ~options ~clusters:2 fig1 (fig1_paths ()) (fig1_envelope ())
  in
  Alcotest.(check bool) "solved" true
    (r.Raha.Cluster.report.Raha.Analysis.status = Milp.Solver.Optimal);
  (* clustering is an approximation: it must find a valid lower bound and
     here (independent demands) the exact optimum *)
  check_float "finds 9" 9. r.Raha.Cluster.report.Raha.Analysis.degradation;
  Alcotest.(check bool) "block solves counted" true (r.Raha.Cluster.block_solves >= 2)

let test_cluster_never_exceeds_unclustered () =
  let topo = Wan.Generators.africa_like ~seed:9 ~n:8 () in
  let pairs = [ (0, 5); (1, 6); (2, 7) ] in
  let paths = Netpath.Path_set.compute ~n_primary:1 ~n_backup:1 topo pairs in
  let base = Traffic.Demand.of_list (List.map (fun p -> (p, 60.)) pairs) in
  let envelope = Traffic.Envelope.from_zero ~slack:0.2 base in
  let spec =
    { spec_k1 with Raha.Bilevel.encoding = Raha.Bilevel.Strong_duality { levels = 3 } }
  in
  let options = { Raha.Analysis.default_options with spec } in
  let full = Raha.Analysis.analyze ~options topo paths envelope in
  let clustered = Raha.Cluster.analyze ~options ~clusters:2 topo paths envelope in
  Alcotest.(check bool) "clustered <= full optimum" true
    (clustered.Raha.Cluster.report.Raha.Analysis.degradation
    <= full.Raha.Analysis.degradation +. 1e-4)

(* --- augmentation ------------------------------------------------------ *)

let test_augment_lags_fig1 () =
  (* after augmenting, no single-link failure may degrade fig1 *)
  let options = { Raha.Analysis.default_options with spec = spec_k1 } in
  let r =
    Raha.Augment.augment_lags ~options ~link_capacity:4. ~new_capacity_can_fail:false
      fig1 (fig1_paths ()) (fig1_envelope ())
  in
  Alcotest.(check bool) "converged" true r.Raha.Augment.converged;
  Alcotest.(check bool) "added links" true (r.Raha.Augment.total_links_added > 0);
  check_float ~eps:1e-4 "no residual degradation" 0.
    r.Raha.Augment.final.Raha.Analysis.degradation;
  (* the augmented topology really is resilient: replay every single-link
     failure at several demands in the envelope *)
  let topo' = r.Raha.Augment.topo in
  let paths = fig1_paths () in
  List.iter
    (fun d ->
      List.iter
        (fun s ->
          match Te.Simulate.degradation topo' paths d s with
          | Some deg ->
            Alcotest.(check bool)
              (Printf.sprintf "resilient (deg %.3f)" deg)
              true (deg < 1e-4)
          | None -> Alcotest.fail "infeasible replay")
        (Failure.Enumerate.up_to_k topo' ~k:1))
    [
      Traffic.Demand.of_list [ ((1, 3), 18.); ((2, 3), 15.) ];
      Traffic.Demand.of_list [ ((1, 3), 6.); ((2, 3), 15.) ];
    ]

let test_augment_respects_probability_threshold () =
  (* with a threshold that excludes all failures, no augment is needed *)
  let spec = { spec_k1 with Raha.Bilevel.threshold = Some 0.9; max_failures = None } in
  let options = { Raha.Analysis.default_options with spec } in
  let r =
    Raha.Augment.augment_lags ~options fig1 (fig1_paths ()) (fig1_envelope ())
  in
  Alcotest.(check bool) "converged immediately" true r.Raha.Augment.converged;
  check_int "no steps" 0 (List.length r.Raha.Augment.steps);
  check_int "no links" 0 r.Raha.Augment.total_links_added

let test_augment_new_lags () =
  (* a path graph A - B - C with demand A->C: the B-C link is the weak
     point; allow a direct A-C LAG as candidate *)
  let topo =
    Wan.Topology.create ~name:"line" ~num_nodes:3
      [
        Wan.Lag.uniform ~id:0 ~src:0 ~dst:1 ~n:1 ~capacity:10. ~fail_prob:0.01;
        Wan.Lag.uniform ~id:1 ~src:1 ~dst:2 ~n:1 ~capacity:10. ~fail_prob:0.01;
      ]
  in
  let repath t =
    Netpath.Path_set.compute ~n_primary:2 ~n_backup:1 t [ (0, 2) ]
  in
  let envelope =
    Traffic.Envelope.fixed (Traffic.Demand.of_list [ ((0, 2), 8.) ])
  in
  let options = { Raha.Analysis.default_options with spec = spec_k1 } in
  let r =
    Raha.Augment.augment_new_lags ~options ~link_capacity:10.
      ~candidates:[ (0, 2) ] ~repath topo envelope
  in
  Alcotest.(check bool) "converged" true r.Raha.Augment.converged;
  Alcotest.(check bool) "A-C LAG added" true
    (Wan.Topology.lag_between r.Raha.Augment.topo 0 2 <> None)

(* --- alerts ------------------------------------------------------------ *)

let test_alert_fast_stage () =
  (* fig1 with tolerance below the fixed-peak degradation: fast alert *)
  let peak = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  let v =
    Raha.Alert.run ~spec:spec_k1 ~tolerance:0.5 fig1 (fig1_paths ()) ~peak
      (fig1_envelope ())
  in
  Alcotest.(check bool) "alert" true v.Raha.Alert.alert;
  Alcotest.(check bool) "fast stage" true (v.Raha.Alert.stage = Some Raha.Alert.Fast_fixed_demand);
  Alcotest.(check bool) "no deep run" true (v.Raha.Alert.deep = None)

let test_alert_deep_stage () =
  (* tolerance above the fixed-peak degradation (7/6.8 ~ 1.03) but below
     the variable-demand one (9/6.8 ~ 1.32): deep alert *)
  let peak = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  let v =
    Raha.Alert.run ~spec:spec_k1 ~tolerance:1.1 fig1 (fig1_paths ()) ~peak
      (fig1_envelope ())
  in
  Alcotest.(check bool) "alert" true v.Raha.Alert.alert;
  Alcotest.(check bool) "deep stage" true
    (v.Raha.Alert.stage = Some Raha.Alert.Deep_variable_demand)

let test_alert_quiet () =
  let peak = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  let v =
    Raha.Alert.run ~spec:spec_k1 ~tolerance:5. fig1 (fig1_paths ()) ~peak
      (fig1_envelope ())
  in
  Alcotest.(check bool) "no alert" true (not v.Raha.Alert.alert);
  Alcotest.(check bool) "deep ran" true (v.Raha.Alert.deep <> None)

(* --- baselines --------------------------------------------------------- *)

let test_k_failures_monotone () =
  (* more allowed failures never decrease the worst degradation *)
  let envelope = fig1_envelope () in
  let paths = fig1_paths () in
  let d1 = (Raha.Baselines.k_failures ~k:1 fig1 paths envelope).Raha.Analysis.degradation in
  let d2 = (Raha.Baselines.k_failures ~k:2 fig1 paths envelope).Raha.Analysis.degradation in
  let d3 = (Raha.Baselines.k_failures ~k:3 fig1 paths envelope).Raha.Analysis.degradation in
  Alcotest.(check bool) "k=2 >= k=1" true (d2 +. 1e-6 >= d1);
  Alcotest.(check bool) "k=3 >= k=2" true (d3 +. 1e-6 >= d2);
  check_float "k=1 is 9" 9. d1

let test_worst_failures_at_demand () =
  (* Fig. 3's point: the naive baseline underestimates the degradation *)
  let paths = fig1_paths () in
  let avg = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  let options =
    { Raha.Analysis.default_options with spec = spec_k1 }
  in
  let naive = Raha.Baselines.worst_failures_at_demand ~options fig1 paths avg in
  (* at fixed (12,10) the naive implied degradation is the true fixed
     worst case (7) -- still below Raha's joint 9 *)
  check_float "implied degradation" 7. naive.Raha.Analysis.degradation;
  let joint =
    Raha.Analysis.analyze
      ~options fig1 paths (fig1_envelope ())
  in
  Alcotest.(check bool) "joint dominates" true
    (joint.Raha.Analysis.degradation > naive.Raha.Analysis.degradation +. 1e-6)

(* --- combined constraints vs oracle ------------------------------------- *)

let prop_threshold_and_k_matches_oracle =
  (* probability threshold AND max-failures together must match the
     enumeration oracle filtered the same way *)
  QCheck2.Test.make ~name:"threshold + k == filtered oracle" ~count:10
    QCheck2.Gen.(
      let* seed = int_range 0 300 in
      let* k = int_range 1 2 in
      let* thr_exp = int_range 3 6 in
      return (seed, k, thr_exp))
    (fun (seed, k, thr_exp) ->
      let threshold = Float.pow 10. (-.float_of_int thr_exp) in
      let topo = Wan.Generators.africa_like ~seed ~n:7 () in
      let pairs = [ (0, 4); (1, 5) ] in
      let paths = Netpath.Path_set.compute ~n_primary:1 ~n_backup:1 topo pairs in
      let d = Traffic.Demand.of_list (List.map (fun p -> (p, 90.)) pairs) in
      let spec =
        {
          Raha.Bilevel.default_spec with
          Raha.Bilevel.max_failures = Some k;
          threshold = Some threshold;
        }
      in
      let options = { Raha.Analysis.default_options with spec } in
      let r = Raha.Analysis.analyze ~options topo paths (Traffic.Envelope.fixed d) in
      let oracle =
        List.fold_left
          (fun acc s ->
            if Failure.Scenario.prob topo s >= threshold then
              match Te.Simulate.degradation topo paths d s with
              | Some deg -> Float.max acc deg
              | None -> acc
            else acc)
          0.
          (Failure.Enumerate.up_to_k topo ~k)
      in
      r.Raha.Analysis.status = Milp.Solver.Optimal
      && Float.abs (r.Raha.Analysis.degradation -. oracle) < 1e-4)

(* --- fast path equivalence ----------------------------------------------- *)

let test_fixed_fast_path_equivalent () =
  (* a fixed envelope (fast path: healthy optimum solved separately) and
     an epsilon-wide envelope (general path) must agree *)
  let topo = Wan.Generators.africa_like ~seed:3 ~n:8 () in
  let pairs = [ (0, 5); (1, 6) ] in
  let paths = Netpath.Path_set.compute ~n_primary:2 ~n_backup:1 topo pairs in
  let d = Traffic.Demand.of_list (List.map (fun p -> (p, 70.)) pairs) in
  let spec = { Raha.Bilevel.default_spec with Raha.Bilevel.max_failures = Some 2 } in
  let options = { Raha.Analysis.default_options with spec } in
  let fast = Raha.Analysis.analyze ~options topo paths (Traffic.Envelope.fixed d) in
  let slow =
    Raha.Analysis.analyze ~options topo paths (Traffic.Envelope.around ~slack:1e-9 d)
  in
  Alcotest.(check (float 1e-3)) "same degradation" slow.Raha.Analysis.degradation
    fast.Raha.Analysis.degradation;
  Alcotest.(check (float 1e-3)) "same healthy" slow.Raha.Analysis.healthy_performance
    fast.Raha.Analysis.healthy_performance

(* --- reporting ----------------------------------------------------------- *)

let test_report_csv () =
  let paths = fig1_paths () in
  let d = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  let options = { Raha.Analysis.default_options with spec = spec_k1 } in
  let r = Raha.Analysis.analyze ~options fig1 paths (Traffic.Envelope.fixed d) in
  let csv = Raha.Report.to_csv r in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  (* header + summary + pair header + 2 pair rows *)
  check_int "line count" 5 (List.length lines);
  Alcotest.(check bool) "summary header first" true
    (List.nth lines 0 = Raha.Report.summary_header);
  let summary = List.nth lines 1 in
  Alcotest.(check bool) "starts with status" true
    (String.length summary > 8 && String.sub summary 0 8 = "optimal,");
  (* per-pair rows carry the loss column: healthy - failed sums to the
     degradation *)
  let pair_loss =
    List.fold_left
      (fun acc ((_, _), h, f) -> acc +. (h -. f))
      0. r.Raha.Analysis.per_pair
  in
  check_float "per-pair losses sum to degradation" r.Raha.Analysis.degradation pair_loss

let test_explanation_renders () =
  let paths = fig1_paths () in
  let options = { Raha.Analysis.default_options with spec = spec_k1 } in
  let r = Raha.Analysis.analyze ~options fig1 paths (fig1_envelope ()) in
  let s = Format.asprintf "%a" (Raha.Analysis.pp_explanation fig1) r in
  Alcotest.(check bool) "mentions the failed LAG" true
    (let contains hay needle =
       let nh = String.length hay and nn = String.length needle in
       let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
       go 0
     in
     contains s "goes down" && contains s "degradation")


let prop_degradation_monotone_in_envelope =
  (* a larger demand envelope can only increase the worst degradation *)
  QCheck2.Test.make ~name:"degradation monotone in envelope inclusion" ~count:8
    QCheck2.Gen.(int_range 0 200)
    (fun seed ->
      let topo = Wan.Generators.africa_like ~seed ~n:7 () in
      let pairs = [ (0, 4); (1, 5) ] in
      let paths = Netpath.Path_set.compute ~n_primary:1 ~n_backup:1 topo pairs in
      let base = Traffic.Demand.of_list (List.map (fun p -> (p, 70.)) pairs) in
      (* levels chosen so the small demand grid {0, .75, 1.5}*base is a
         subset of the large one {0, .75, 1.5, 2.25, 3}*base *)
      let run slack levels =
        let spec =
          {
            Raha.Bilevel.default_spec with
            Raha.Bilevel.max_failures = Some 2;
            encoding = Raha.Bilevel.Strong_duality { levels };
          }
        in
        let options = { Raha.Analysis.default_options with spec } in
        Raha.Analysis.analyze ~options topo paths (Traffic.Envelope.from_zero ~slack base)
      in
      let small = run 0.5 3 and large = run 2.0 5 in
      small.Raha.Analysis.status = Milp.Solver.Optimal
      && large.Raha.Analysis.status = Milp.Solver.Optimal
      && large.Raha.Analysis.degradation +. 1e-4 >= small.Raha.Analysis.degradation)

let suite =
  [
    ("partition", `Quick, test_partition);
    ("cluster analysis on fig1", `Quick, test_cluster_analysis_reaches_optimum_on_fig1);
    ("cluster never exceeds unclustered", `Quick, test_cluster_never_exceeds_unclustered);
    ("augment lags fig1", `Quick, test_augment_lags_fig1);
    ("augment respects threshold", `Quick, test_augment_respects_probability_threshold);
    ("augment new lags", `Quick, test_augment_new_lags);
    ("alert fast stage", `Quick, test_alert_fast_stage);
    ("alert deep stage", `Quick, test_alert_deep_stage);
    ("alert quiet", `Quick, test_alert_quiet);
    ("k failures monotone", `Quick, test_k_failures_monotone);
    ("worst failures at demand", `Quick, test_worst_failures_at_demand);
    ("fixed fast path equivalent", `Quick, test_fixed_fast_path_equivalent);
    ("report csv", `Quick, test_report_csv);
    ("explanation renders", `Quick, test_explanation_renders);
    QCheck_alcotest.to_alcotest prop_threshold_and_k_matches_oracle;
    QCheck_alcotest.to_alcotest prop_degradation_monotone_in_envelope;
  ]
