(* TE formulation and direct-simulation tests, validated against the
   hand-solved Fig. 1 example. *)

let check_float ?(eps = 1e-6) what expected got =
  Alcotest.(check (float eps)) what expected got

let fig1 = Wan.Generators.fig1 ()

(* A=0 B=1 C=2 D=3; pairs B->D, C->D. Figure 1 configures two usable
   paths per pair (the healthy network routes all 22 units, so both are
   primaries). *)
let fig1_paths () =
  Netpath.Path_set.compute ~n_primary:2 ~n_backup:0 fig1 [ (1, 3); (2, 3) ]

let d12_10 = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ]

let scenario links = Failure.Scenario.of_links fig1 links

let perf = function
  | Some (r : Te.Simulate.result) -> r.Te.Simulate.performance
  | None -> Alcotest.fail "expected feasible routing"

let test_healthy_routes_all () =
  let paths = fig1_paths () in
  check_float "healthy carries 22" 22. (perf (Te.Simulate.healthy fig1 paths d12_10))

let test_fig1_fixed_demand_failures () =
  let paths = fig1_paths () in
  (* paper scenario (a): failing BD (lag 0) leaves 15 *)
  check_float "fail BD -> 15" 15.
    (perf (Te.Simulate.route fig1 paths d12_10 (scenario [ (0, 0) ])));
  (* failing AD (lag 2) leaves 16 *)
  check_float "fail AD -> 16" 16.
    (perf (Te.Simulate.route fig1 paths d12_10 (scenario [ (2, 0) ])));
  (* failing CD (lag 1) leaves 16 *)
  check_float "fail CD -> 16" 16.
    (perf (Te.Simulate.route fig1 paths d12_10 (scenario [ (1, 0) ])))

let test_fig1_degradation () =
  let paths = fig1_paths () in
  (* worst single-link failure for fixed (12,10): BD, degradation 7 *)
  let worst =
    List.fold_left
      (fun acc s ->
        match Te.Simulate.degradation fig1 paths d12_10 s with
        | Some d -> Float.max acc d
        | None -> acc)
      0.
      (Failure.Enumerate.up_to_k fig1 ~k:1)
  in
  check_float "worst fixed-demand degradation is 7" 7. worst

let test_fig1_naive_vs_raha_demands () =
  let paths = fig1_paths () in
  (* naive worst demands (6,5): healthy 11, worst failure leaves 10 *)
  let d65 = Traffic.Demand.of_list [ ((1, 3), 6.); ((2, 3), 5.) ] in
  check_float "healthy (6,5) = 11" 11. (perf (Te.Simulate.healthy fig1 paths d65));
  check_float "fail CD at (6,5) -> 10" 10.
    (perf (Te.Simulate.route fig1 paths d65 (scenario [ (1, 0) ])));
  (* Raha demands (13,12): healthy 25, failing AD leaves 16 -> gap 9 *)
  let d1312 = Traffic.Demand.of_list [ ((1, 3), 13.); ((2, 3), 12.) ] in
  check_float "healthy (13,12) = 25" 25. (perf (Te.Simulate.healthy fig1 paths d1312));
  check_float "fail AD at (13,12) -> 16" 16.
    (perf (Te.Simulate.route fig1 paths d1312 (scenario [ (2, 0) ])));
  check_float "degradation 9" 9.
    (Option.get (Te.Simulate.degradation fig1 paths d1312 (scenario [ (2, 0) ])))

let test_backup_only_when_primary_down () =
  (* the backup path BAD may only be used once BD is down: with BD up but
     congested, traffic must NOT overflow onto BAD in the healthy network
     ... but the failed network can use it when BD fails. *)
  let paths = Netpath.Path_set.compute ~n_primary:1 ~n_backup:1 fig1 [ (1, 3); (2, 3) ] in
  let d = Traffic.Demand.of_list [ ((1, 3), 20.) ] in
  (* healthy: only the primary BD (cap 8) counts *)
  check_float "primary only" 8. (perf (Te.Simulate.healthy fig1 paths d));
  (* BD down: backup BAD (min(BA 5, AD 9) = 5) takes over *)
  check_float "backup after failure" 5.
    (perf (Te.Simulate.route fig1 paths d (scenario [ (0, 0) ])))

let test_availability () =
  let paths = Netpath.Path_set.compute ~n_primary:1 ~n_backup:1 fig1 [ (1, 3); (2, 3) ] in
  let bd = Netpath.Path_set.find paths ~src:1 ~dst:3 in
  let a0 = Te.Simulate.availability fig1 bd Failure.Scenario.empty in
  Alcotest.(check (array bool)) "no failure: primary only" [| true; false |] a0;
  let a1 = Te.Simulate.availability fig1 bd (scenario [ (0, 0) ]) in
  Alcotest.(check (array bool)) "primary down: backup active" [| true; true |] a1

let test_naive_failover_weaker () =
  (* naive fail-over can never beat optimal fail-over *)
  let paths = fig1_paths () in
  let h = Option.get (Te.Simulate.healthy fig1 paths d12_10) in
  List.iter
    (fun s ->
      let opt = Te.Simulate.route fig1 paths d12_10 s in
      let naive =
        Te.Simulate.route ~reaction:Te.Simulate.Naive_failover ~healthy:h fig1 paths
          d12_10 s
      in
      match (opt, naive) with
      | Some o, Some n ->
        Alcotest.(check bool)
          "naive <= optimal" true
          (n.Te.Simulate.performance <= o.Te.Simulate.performance +. 1e-6)
      | _ -> Alcotest.fail "expected feasible")
    (Failure.Enumerate.up_to_k fig1 ~k:1)

let test_mlu_objective () =
  (* 1 primary + 1 backup: healthy MLU uses only the primaries *)
  let paths = Netpath.Path_set.compute ~n_primary:1 ~n_backup:1 fig1 [ (1, 3); (2, 3) ] in
  let d = Traffic.Demand.of_list [ ((1, 3), 4.); ((2, 3), 4.) ] in
  let mlu = Te.Formulation.Mlu { u_max = 10. } in
  let h = perf (Te.Simulate.healthy ~objective:mlu fig1 paths d) in
  (* both primaries have capacity 8, demand 4 -> MLU 0.5 *)
  check_float "healthy MLU" 0.5 h;
  (* failing BD forces B's traffic onto BAD: BA carries 4/5 = 0.8 *)
  let f = perf (Te.Simulate.route ~objective:mlu fig1 paths d (scenario [ (0, 0) ])) in
  check_float "failed MLU" 0.8 f;
  check_float "MLU degradation" 0.3
    (Option.get (Te.Simulate.degradation ~objective:mlu fig1 paths d (scenario [ (0, 0) ])));
  (* failing CD is even worse: CAD's CA link carries 4/4 = 1.0 *)
  check_float "fail CD MLU" 1.0
    (perf (Te.Simulate.route ~objective:mlu fig1 paths d (scenario [ (1, 0) ])))

let test_mlu_infeasible_when_disconnected () =
  let paths = Netpath.Path_set.compute ~n_primary:1 ~n_backup:1 fig1 [ (1, 3); (2, 3) ] in
  let d = Traffic.Demand.of_list [ ((1, 3), 4.) ] in
  let mlu = Te.Formulation.Mlu { u_max = 10. } in
  (* both BD and AD down: B cannot reach D at all -> infeasible *)
  let r = Te.Simulate.route ~objective:mlu fig1 paths d (scenario [ (0, 0); (2, 0) ]) in
  Alcotest.(check bool) "infeasible" true (r = None)

let test_max_min_binner () =
  (* two pairs share one bottleneck: max-min splits it evenly, while
     total-flow may starve one pair. Topology: s1->t, s2->t over a shared
     LAG of capacity 10. *)
  let t =
    Wan.Topology.create ~name:"shared" ~num_nodes:4
      [
        Wan.Lag.uniform ~id:0 ~src:0 ~dst:2 ~n:1 ~capacity:100. ~fail_prob:0.01;
        Wan.Lag.uniform ~id:1 ~src:1 ~dst:2 ~n:1 ~capacity:100. ~fail_prob:0.01;
        Wan.Lag.uniform ~id:2 ~src:2 ~dst:3 ~n:1 ~capacity:10. ~fail_prob:0.01;
      ]
  in
  let paths = Netpath.Path_set.compute ~n_primary:1 ~n_backup:0 t [ (0, 3); (1, 3) ] in
  let d = Traffic.Demand.of_list [ ((0, 3), 10.); ((1, 3), 10.) ] in
  let mm = Te.Formulation.Max_min { bins = 4; ratio = 1. } in
  let r = Option.get (Te.Simulate.healthy ~objective:mm t paths d) in
  (* total is 10 either way; fairness shows in the per-pair split *)
  check_float "total" 10. r.Te.Simulate.performance;
  let f0 = Te.Formulation.pair_flow r.Te.Simulate.index 0 r.Te.Simulate.flows in
  let f1 = Te.Formulation.pair_flow r.Te.Simulate.index 1 r.Te.Simulate.flows in
  check_float ~eps:0.26 "even split 0" 5. f0;
  check_float ~eps:0.26 "even split 1" 5. f1

let test_edge_form_upper_bounds_path_form () =
  let paths = fig1_paths () in
  let full_cap e = Wan.Lag.capacity (Wan.Topology.lag fig1 e) in
  let ef = Option.get (Te.Edge_form.max_total_flow fig1 d12_10 ~lag_cap:full_cap) in
  let pf = perf (Te.Simulate.healthy fig1 paths d12_10) in
  Alcotest.(check bool) "edge form >= path form" true (ef.Te.Edge_form.total +. 1e-6 >= pf);
  check_float "edge form routes all 22" 22. ef.Te.Edge_form.total

let test_edge_form_respects_capacity () =
  (* cut every LAG into D except BD: only 8 units can reach D from B *)
  let d = Traffic.Demand.of_list [ ((1, 3), 20.) ] in
  let cap e = if e = 1 || e = 2 then 0. else Wan.Lag.capacity (Wan.Topology.lag fig1 e) in
  let r = Option.get (Te.Edge_form.max_total_flow fig1 d ~lag_cap:cap) in
  check_float "bottleneck" 8. r.Te.Edge_form.total

(* qcheck: simulated degradation is always >= 0 and <= healthy flow *)
let prop_degradation_bounds =
  QCheck2.Test.make ~name:"simulate: 0 <= degradation <= healthy" ~count:60
    QCheck2.Gen.(
      let* seed = int_range 0 999 in
      let* k = int_range 0 2 in
      return (seed, k))
    (fun (seed, k) ->
      let t = Wan.Generators.africa_like ~seed ~n:8 () in
      let rng = Random.State.make [| seed + 1 |] in
      let pairs = [ (0, 5); (1, 6) ] in
      let paths = Netpath.Path_set.compute ~n_primary:2 ~n_backup:1 t pairs in
      let d =
        Traffic.Demand.of_list
          (List.map (fun p -> (p, 10. +. Random.State.float rng 90.)) pairs)
      in
      let h =
        match Te.Simulate.healthy t paths d with Some r -> r.Te.Simulate.performance | None -> -1.
      in
      if h < 0. then false
      else begin
        let links = ref [] in
        let lags = Wan.Topology.lags t in
        for _ = 1 to k do
          let e = Random.State.int rng (Array.length lags) in
          let l = Random.State.int rng (Wan.Lag.num_links lags.(e)) in
          if not (List.mem (e, l) !links) then links := (e, l) :: !links
        done;
        let s = Failure.Scenario.of_links t !links in
        match Te.Simulate.degradation t paths d s with
        | Some deg -> deg >= -1e-6 && deg <= h +. 1e-6
        | None -> false
      end)

let suite =
  [
    ("healthy routes all", `Quick, test_healthy_routes_all);
    ("fig1 fixed-demand failures", `Quick, test_fig1_fixed_demand_failures);
    ("fig1 degradation", `Quick, test_fig1_degradation);
    ("fig1 naive vs raha demands", `Quick, test_fig1_naive_vs_raha_demands);
    ("backup gating", `Quick, test_backup_only_when_primary_down);
    ("availability", `Quick, test_availability);
    ("naive failover weaker", `Quick, test_naive_failover_weaker);
    ("mlu objective", `Quick, test_mlu_objective);
    ("mlu infeasible when disconnected", `Quick, test_mlu_infeasible_when_disconnected);
    ("max-min binner", `Quick, test_max_min_binner);
    ("edge form upper bound", `Quick, test_edge_form_upper_bounds_path_form);
    ("edge form capacity", `Quick, test_edge_form_respects_capacity);
    QCheck_alcotest.to_alcotest prop_degradation_bounds;
  ]
