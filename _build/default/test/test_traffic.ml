(* Demand matrices, gravity model, synthetic history and envelopes. *)

let check_float ?(eps = 1e-9) what expected got =
  Alcotest.(check (float eps)) what expected got

let check_int = Alcotest.(check int)

let test_demand_basics () =
  let d = Traffic.Demand.of_list [ ((0, 1), 5.); ((2, 3), 7.) ] in
  check_float "volume" 5. (Traffic.Demand.volume d ~src:0 ~dst:1);
  check_float "absent pair" 0. (Traffic.Demand.volume d ~src:1 ~dst:0);
  check_float "total" 12. (Traffic.Demand.total d);
  check_int "cardinal" 2 (Traffic.Demand.cardinal d);
  let d2 = Traffic.Demand.scale 2. d in
  check_float "scaled" 10. (Traffic.Demand.volume d2 ~src:0 ~dst:1);
  let d3 = Traffic.Demand.set d ~src:0 ~dst:1 9. in
  check_float "set" 9. (Traffic.Demand.volume d3 ~src:0 ~dst:1);
  check_float "original untouched" 5. (Traffic.Demand.volume d ~src:0 ~dst:1);
  Alcotest.(check (list (pair int int))) "pairs" [ (0, 1); (2, 3) ] (Traffic.Demand.pairs d)

let test_demand_validation () =
  let bad l =
    match Traffic.Demand.of_list l with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad [ ((0, 1), -1.) ];
  bad [ ((1, 1), 2.) ];
  bad [ ((0, 1), 1.); ((0, 1), 2.) ]

let test_demand_union_max () =
  let a = Traffic.Demand.of_list [ ((0, 1), 5.); ((2, 3), 7.) ] in
  let b = Traffic.Demand.of_list [ ((0, 1), 3.); ((4, 5), 2.) ] in
  let u = Traffic.Demand.union_max a b in
  check_float "max kept" 5. (Traffic.Demand.volume u ~src:0 ~dst:1);
  check_float "a-only kept" 7. (Traffic.Demand.volume u ~src:2 ~dst:3);
  check_float "b-only kept" 2. (Traffic.Demand.volume u ~src:4 ~dst:5)

let test_gravity () =
  let topo = Wan.Generators.ring 6 in
  let d = Traffic.Gravity.generate ~scale:100. ~seed:3 topo () in
  (* all ordered pairs *)
  check_int "pairs" 30 (Traffic.Demand.cardinal d);
  let peak =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 0. (Traffic.Demand.entries d)
  in
  check_float "peak equals scale" 100. peak;
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "positive" true (v > 0.))
    (Traffic.Demand.entries d);
  (* deterministic *)
  let d2 = Traffic.Gravity.generate ~scale:100. ~seed:3 topo () in
  check_float "deterministic" (Traffic.Demand.total d) (Traffic.Demand.total d2);
  (* restricted pairs *)
  let d3 = Traffic.Gravity.generate ~pairs:[ (0, 3) ] ~scale:50. ~seed:3 topo () in
  check_int "restricted" 1 (Traffic.Demand.cardinal d3)

let test_traffic_gen () =
  let topo = Wan.Generators.ring 5 in
  let pairs = [ (0, 2); (1, 3) ] in
  let s =
    Traffic.Traffic_gen.generate ~seed:9 ~days:10 ~samples_per_day:4 ~pairs
      ~mean_volume:40. topo ()
  in
  check_int "samples" 40 (Array.length s.Traffic.Traffic_gen.samples);
  let avg = Traffic.Traffic_gen.average s in
  let mx = Traffic.Traffic_gen.maximum s in
  List.iter
    (fun (src, dst) ->
      let a = Traffic.Demand.volume avg ~src ~dst in
      let m = Traffic.Demand.volume mx ~src ~dst in
      Alcotest.(check bool) "max >= avg" true (m >= a);
      Alcotest.(check bool) "avg positive" true (a > 0.);
      (* max over each sample individually *)
      Array.iter
        (fun d ->
          Alcotest.(check bool) "max dominates samples" true
            (Traffic.Demand.volume d ~src ~dst <= m +. 1e-9))
        s.Traffic.Traffic_gen.samples)
    pairs

let test_envelope_fixed () =
  let d = Traffic.Demand.of_list [ ((0, 1), 5.) ] in
  let e = Traffic.Envelope.fixed d in
  Alcotest.(check bool) "is_fixed" true (Traffic.Envelope.is_fixed e);
  check_float "lo = hi" (Traffic.Envelope.lo_volume e ~src:0 ~dst:1)
    (Traffic.Envelope.hi_volume e ~src:0 ~dst:1);
  check_float "max_hi" 5. (Traffic.Envelope.max_hi e)

let test_envelope_ranges () =
  let d = Traffic.Demand.of_list [ ((0, 1), 10.); ((1, 2), 20.) ] in
  let z = Traffic.Envelope.from_zero ~slack:0.5 d in
  check_float "lo 0" 0. (Traffic.Envelope.lo_volume z ~src:0 ~dst:1);
  check_float "hi scaled" 15. (Traffic.Envelope.hi_volume z ~src:0 ~dst:1);
  Alcotest.(check bool) "not fixed" false (Traffic.Envelope.is_fixed z);
  let a = Traffic.Envelope.around ~slack:0.3 d in
  check_float "around lo" 7. (Traffic.Envelope.lo_volume a ~src:0 ~dst:1);
  check_float "around hi" 13. (Traffic.Envelope.hi_volume a ~src:0 ~dst:1);
  let u = Traffic.Envelope.unbounded ~cap:99. [ (3, 4) ] in
  check_float "unbounded lo" 0. (Traffic.Envelope.lo_volume u ~src:3 ~dst:4);
  check_float "unbounded hi" 99. (Traffic.Envelope.hi_volume u ~src:3 ~dst:4);
  match Traffic.Envelope.from_zero ~slack:(-0.1) d with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative slack rejected"

(* qcheck: average of the synthetic series stays near the configured
   per-pair base level (the generator's contract with §8.1) *)
let prop_series_avg_near_base =
  QCheck2.Test.make ~name:"traffic series: time-average tracks base level" ~count:20
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let topo = Wan.Generators.ring 4 in
      let pairs = [ (0, 2) ] in
      let s =
        Traffic.Traffic_gen.generate ~seed ~days:30 ~samples_per_day:8 ~pairs
          ~mean_volume:50. topo ()
      in
      let base = Traffic.Demand.volume s.Traffic.Traffic_gen.base ~src:0 ~dst:2 in
      let avg =
        Traffic.Demand.volume (Traffic.Traffic_gen.average s) ~src:0 ~dst:2
      in
      Float.abs (avg -. base) /. base < 0.25)

let test_demand_io_roundtrip () =
  let d = Traffic.Demand.of_list [ ((0, 1), 5.25); ((3, 2), 0.); ((7, 9), 1e6) ] in
  let d2 = Traffic.Demand_io.of_csv (Traffic.Demand_io.to_csv d) in
  check_int "cardinal" (Traffic.Demand.cardinal d) (Traffic.Demand.cardinal d2);
  List.iter
    (fun ((src, dst), v) ->
      check_float "volume" v (Traffic.Demand.volume d2 ~src ~dst))
    (Traffic.Demand.entries d)

let test_demand_io_errors () =
  let bad s =
    match Traffic.Demand_io.of_csv s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "expected Failure"
  in
  bad "1,2";
  bad "a,b,c";
  bad "1,2,3,4";
  (* comments and blanks ok *)
  let d = Traffic.Demand_io.of_csv "# hdr\n\n1,2,3.5\n" in
  check_float "parsed" 3.5 (Traffic.Demand.volume d ~src:1 ~dst:2)

let suite =
  [
    ("demand basics", `Quick, test_demand_basics);
    ("demand validation", `Quick, test_demand_validation);
    ("demand union max", `Quick, test_demand_union_max);
    ("gravity model", `Quick, test_gravity);
    ("traffic generator", `Quick, test_traffic_gen);
    ("envelope fixed", `Quick, test_envelope_fixed);
    ("envelope ranges", `Quick, test_envelope_ranges);
    ("demand io roundtrip", `Quick, test_demand_io_roundtrip);
    ("demand io errors", `Quick, test_demand_io_errors);
    QCheck_alcotest.to_alcotest prop_series_avg_near_base;
  ]

