(* Dijkstra, Yen and path-set tests. *)

let check_int = Alcotest.(check int)

let fig1 = Wan.Generators.fig1 ()

(* node ids in fig1: A=0 B=1 C=2 D=3 *)

let test_path_make () =
  let p = Netpath.Path.make fig1 [ 1; 0; 3 ] in
  check_int "length" 2 (Netpath.Path.length p);
  check_int "src" 1 (Netpath.Path.src p);
  check_int "dst" 3 (Netpath.Path.dst p);
  Alcotest.(check bool) "mem AD lag" true (Netpath.Path.mem_lag p 2);
  Alcotest.(check bool) "not mem CD lag" false (Netpath.Path.mem_lag p 1);
  (match Netpath.Path.make fig1 [ 1; 2 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no LAG between B and C");
  match Netpath.Path.make fig1 [ 1; 0; 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "repeated node"

let test_dijkstra () =
  let p = Option.get (Netpath.Shortest.dijkstra fig1 ~src:1 ~dst:3) in
  check_int "B-D direct" 1 (Netpath.Path.length p);
  (* with BD heavily weighted, route via A *)
  let w id = if id = 0 then 10. else 1. in
  let p2 = Option.get (Netpath.Shortest.dijkstra ~weight:w fig1 ~src:1 ~dst:3) in
  check_int "B-A-D" 2 (Netpath.Path.length p2);
  Alcotest.(check (list int)) "nodes" [ 1; 0; 3 ] (Netpath.Path.node_list p2);
  (* avoiding the BD lag also forces the detour *)
  let p3 =
    Option.get
      (Netpath.Shortest.dijkstra ~avoid_lags:(fun id -> id = 0) fig1 ~src:1 ~dst:3)
  in
  check_int "avoid BD" 2 (Netpath.Path.length p3);
  (* unreachable when everything around D is cut *)
  Alcotest.(check bool) "unreachable" true
    (Netpath.Shortest.dijkstra
       ~avoid_lags:(fun id -> List.mem id [ 0; 1; 2 ])
       fig1 ~src:1 ~dst:3
    = None)

let test_yen () =
  (* B->D has exactly 3 simple paths: B-D, B-A-D, B-A-C-D *)
  let ps = Netpath.Shortest.yen fig1 ~src:1 ~dst:3 4 in
  check_int "three simple paths" 3 (List.length ps);
  (match ps with
  | [ a; b; c ] ->
    check_int "first is direct" 1 (Netpath.Path.length a);
    check_int "second via A" 2 (Netpath.Path.length b);
    check_int "third via A and C" 3 (Netpath.Path.length c)
  | _ -> Alcotest.fail "expected 3");
  (* on a 3x3 grid there are many paths; lengths must be non-decreasing *)
  let grid = Wan.Generators.grid 3 3 in
  let ps = Netpath.Shortest.yen grid ~src:0 ~dst:8 6 in
  check_int "six paths" 6 (List.length ps);
  let lens = List.map Netpath.Path.length ps in
  Alcotest.(check bool) "sorted" true (List.sort compare lens = lens);
  (* all distinct *)
  let rec distinct = function
    | [] -> true
    | p :: rest -> (not (List.exists (Netpath.Path.equal p) rest)) && distinct rest
  in
  Alcotest.(check bool) "distinct" true (distinct ps)

let test_path_set () =
  let ps =
    Netpath.Path_set.compute ~n_primary:1 ~n_backup:1 fig1 [ (1, 3); (2, 3) ]
  in
  check_int "pairs" 2 (List.length ps);
  let bd = Netpath.Path_set.find ps ~src:1 ~dst:3 in
  check_int "primary" 1 (Netpath.Path_set.num_primary bd);
  check_int "backup" 1 (Netpath.Path_set.num_backup bd);
  check_int "total paths" 4 (Netpath.Path_set.total_paths ps);
  (* requesting more paths than exist (B->D has 3): give what's there *)
  let ps2 = Netpath.Path_set.compute ~n_primary:2 ~n_backup:3 fig1 [ (1, 3) ] in
  let p = Netpath.Path_set.find ps2 ~src:1 ~dst:3 in
  check_int "capped primary" 2 (Netpath.Path_set.num_primary p);
  check_int "capped backup" 1 (Netpath.Path_set.num_backup p)

let test_path_set_schemes () =
  let grid = Wan.Generators.grid 3 3 in
  let pairs = [ (0, 8) ] in
  let disjoint =
    Netpath.Path_set.compute ~scheme:Netpath.Path_set.Lag_disjoint ~n_primary:2
      ~n_backup:0 grid pairs
  in
  let p = Netpath.Path_set.find disjoint ~src:0 ~dst:8 in
  (match p.Netpath.Path_set.primary with
  | [ a; b ] -> Alcotest.(check bool) "disjoint" true (Netpath.Path.lag_disjoint a b)
  | _ -> Alcotest.fail "expected 2 paths");
  let penalized =
    Netpath.Path_set.compute ~scheme:Netpath.Path_set.Usage_penalized ~n_primary:3
      ~n_backup:0 grid pairs
  in
  let q = Netpath.Path_set.find penalized ~src:0 ~dst:8 in
  check_int "three paths" 3 (List.length q.Netpath.Path_set.primary)

let test_weighted_scheme () =
  (* weighting the direct BD link away forces BAD first *)
  let w id = if id = 0 then 10. else 1. in
  let ps =
    Netpath.Path_set.compute ~scheme:(Netpath.Path_set.Weighted w) ~n_primary:1
      ~n_backup:1 fig1 [ (1, 3) ]
  in
  let p = Netpath.Path_set.find ps ~src:1 ~dst:3 in
  match p.Netpath.Path_set.primary with
  | [ a ] -> check_int "primary via A" 2 (Netpath.Path.length a)
  | _ -> Alcotest.fail "expected 1 primary"

let test_of_lags_and_weight () =
  (* reconstruct B-A-D from its LAG ids (BA = 3, AD = 2) *)
  let p = Netpath.Path.of_lags fig1 ~src:1 [ 3; 2 ] in
  Alcotest.(check (list int)) "nodes" [ 1; 0; 3 ] (Netpath.Path.node_list p);
  let w id = float_of_int (id + 1) in
  check_int "weight" 7 (int_of_float (Netpath.Path.weight w p));
  (* lag_disjoint *)
  let q = Netpath.Path.make fig1 [ 1; 3 ] in
  Alcotest.(check bool) "disjoint" true (Netpath.Path.lag_disjoint p q);
  Alcotest.(check bool) "self not disjoint" false (Netpath.Path.lag_disjoint p p)

let test_via_gateway_errors () =
  let topo, gw =
    Wan.Topology.add_virtual_gateway fig1 ~name:"GW" ~attached:[ (1, 100.) ]
  in
  (match Netpath.Path_set.via_gateway ~n_primary:1 ~n_backup:0 topo ~gateway:gw ~dsts:[ gw ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dst = gateway rejected");
  (* a gateway attached to a single island still finds paths through it *)
  let ps = Netpath.Path_set.via_gateway ~n_primary:2 ~n_backup:0 topo ~gateway:gw ~dsts:[ 3 ] in
  let p = Netpath.Path_set.find ps ~src:gw ~dst:3 in
  Alcotest.(check bool) "found" true (Netpath.Path_set.num_primary p >= 1)

let prop_yen_paths_valid =
  QCheck2.Test.make ~name:"yen: paths are simple, distinct, sorted" ~count:50
    QCheck2.Gen.(
      let* seed = int_range 0 500 in
      let* k = int_range 1 6 in
      return (seed, k))
    (fun (seed, k) ->
      let topo = Wan.Generators.africa_like ~seed ~n:8 () in
      let ps = Netpath.Shortest.yen topo ~src:0 ~dst:7 k in
      let lens = List.map Netpath.Path.length ps in
      let rec distinct = function
        | [] -> true
        | p :: rest -> (not (List.exists (Netpath.Path.equal p) rest)) && distinct rest
      in
      List.length ps <= k
      && List.sort compare lens = lens
      && distinct ps
      && List.for_all (fun p -> Netpath.Path.src p = 0 && Netpath.Path.dst p = 7) ps)


let suite =
  [
    ("path make", `Quick, test_path_make);
    ("dijkstra", `Quick, test_dijkstra);
    ("yen", `Quick, test_yen);
    ("path set", `Quick, test_path_set);
    ("path set schemes", `Quick, test_path_set_schemes);
    ("weighted scheme", `Quick, test_weighted_scheme);
    ("of_lags and weight", `Quick, test_of_lags_and_weight);
    ("via_gateway errors", `Quick, test_via_gateway_errors);
    QCheck_alcotest.to_alcotest prop_yen_paths_valid;
  ]
