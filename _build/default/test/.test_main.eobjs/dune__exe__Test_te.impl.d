test/test_te.ml: Alcotest Array Failure Float List Netpath Option QCheck2 QCheck_alcotest Random Te Traffic Wan
