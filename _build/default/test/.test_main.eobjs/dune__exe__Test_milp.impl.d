test/test_milp.ml: Alcotest Array Float Linearize Linexpr List Lp_file Milp Model Printf QCheck2 QCheck_alcotest Simplex Solver String
