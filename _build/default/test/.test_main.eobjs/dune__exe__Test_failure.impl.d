test/test_failure.ml: Alcotest Array Failure Float List Printf QCheck2 QCheck_alcotest Random Wan
