test/test_wan.ml: Alcotest Array List Option Wan
