test/test_traffic.ml: Alcotest Array Float List QCheck2 QCheck_alcotest Traffic Wan
