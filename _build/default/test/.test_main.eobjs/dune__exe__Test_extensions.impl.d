test/test_extensions.ml: Alcotest Array Failure Float List Milp Netpath Printf QCheck2 QCheck_alcotest Raha Te Traffic Wan
