test/test_raha.ml: Alcotest Failure Float List Milp Netpath Option QCheck2 QCheck_alcotest Raha Random Te Traffic Wan
