test/test_raha_tools.ml: Alcotest Array Failure Float Format List Milp Netpath Printf QCheck2 QCheck_alcotest Raha String Te Traffic Wan
