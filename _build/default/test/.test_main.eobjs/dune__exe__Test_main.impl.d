test/test_main.ml: Alcotest Test_extensions Test_failure Test_milp Test_netpath Test_raha Test_raha_tools Test_te Test_traffic Test_wan
