test/test_netpath.ml: Alcotest List Netpath Option QCheck2 QCheck_alcotest Wan
