(* End-to-end validation of the bi-level analysis: the Fig. 1 worked
   example (all three scenarios, exact numbers from the paper) and
   cross-validation against the enumeration + simulation oracle. *)

let check_float ?(eps = 1e-5) what expected got =
  Alcotest.(check (float eps)) what expected got

let fig1 = Wan.Generators.fig1 ()

(* Figure 1 configures two usable paths per pair (both primaries: the
   healthy network routes all 22 units). *)
let fig1_paths () =
  Netpath.Path_set.compute ~n_primary:2 ~n_backup:0 fig1 [ (1, 3); (2, 3) ]

let analyze ?(spec = Raha.Bilevel.default_spec) ?(envelope_fixed = None) () =
  let paths = fig1_paths () in
  let envelope =
    match envelope_fixed with
    | Some d -> Traffic.Envelope.fixed d
    | None ->
      (* Fig. 1 middle/right: demands vary +/-50% around (12, 10) *)
      Traffic.Envelope.around ~slack:0.5
        (Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ])
  in
  let options = { Raha.Analysis.default_options with spec } in
  Raha.Analysis.analyze ~options fig1 paths envelope

let spec_k1 goal encoding =
  {
    Raha.Bilevel.default_spec with
    Raha.Bilevel.max_failures = Some 1;
    goal;
    encoding;
  }

let test_fig1_fixed_demand () =
  (* scenario (a): fixed (12, 10), worst single failure degrades by 7 *)
  let d = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  let r =
    analyze
      ~spec:(spec_k1 Raha.Bilevel.Max_degradation (Raha.Bilevel.Strong_duality { levels = 5 }))
      ~envelope_fixed:(Some d) ()
  in
  Alcotest.(check bool) "optimal" true (r.Raha.Analysis.status = Milp.Solver.Optimal);
  check_float "degradation 7" 7. r.Raha.Analysis.degradation;
  check_float "healthy 22" 22. r.Raha.Analysis.healthy_performance;
  check_float "failed 15" 15. r.Raha.Analysis.failed_performance;
  Alcotest.(check int) "one failed link" 1 r.Raha.Analysis.num_failed_links

let test_fig1_naive_worst_case () =
  (* scenario (b): minimizing the FAILED network's performance alone picks
     small demands; the resulting degradation is only 1 *)
  let r =
    analyze ~spec:(spec_k1 Raha.Bilevel.Min_failed_performance (Raha.Bilevel.Strong_duality { levels = 5 })) ()
  in
  Alcotest.(check bool) "optimal" true (r.Raha.Analysis.status = Milp.Solver.Optimal);
  check_float "failed network carries 10" 10. r.Raha.Analysis.failed_performance;
  (* the degradation this naive analysis implies: healthy on the same
     demands minus failed *)
  let paths = fig1_paths () in
  let healthy =
    (Option.get (Te.Simulate.healthy fig1 paths r.Raha.Analysis.worst_demand))
      .Te.Simulate.performance
  in
  check_float "implied degradation only 1" 1. (healthy -. r.Raha.Analysis.failed_performance)

let test_fig1_raha_joint () =
  (* scenario (c): jointly optimizing demand and failure finds gap 9 *)
  let r =
    analyze ~spec:(spec_k1 Raha.Bilevel.Max_degradation (Raha.Bilevel.Strong_duality { levels = 5 })) ()
  in
  Alcotest.(check bool) "optimal" true (r.Raha.Analysis.status = Milp.Solver.Optimal);
  check_float "degradation 9" 9. r.Raha.Analysis.degradation;
  (* the worst failure is the AD link (lag 2) *)
  Alcotest.(check bool) "AD link failed" true
    (Failure.Scenario.is_down r.Raha.Analysis.scenario ~lag:2 ~link:0)

let test_fig1_kkt_matches () =
  (* the KKT encoding (continuous demands) finds the same optimum *)
  let r = analyze ~spec:(spec_k1 Raha.Bilevel.Max_degradation Raha.Bilevel.Kkt) () in
  Alcotest.(check bool) "optimal" true (r.Raha.Analysis.status = Milp.Solver.Optimal);
  check_float "degradation 9" 9. r.Raha.Analysis.degradation

let test_fig1_verified_by_simulation () =
  (* whatever the MILP reports must replay exactly in the simulator *)
  let r = analyze ~spec:(spec_k1 Raha.Bilevel.Max_degradation (Raha.Bilevel.Strong_duality { levels = 5 })) () in
  let paths = fig1_paths () in
  let replay =
    Option.get
      (Te.Simulate.degradation fig1 paths r.Raha.Analysis.worst_demand
         r.Raha.Analysis.scenario)
  in
  check_float "replayed degradation matches" r.Raha.Analysis.degradation replay

(* --- oracle cross-validation on random small instances --------------- *)

let oracle_worst_fixed_demand topo paths d ~k =
  List.fold_left
    (fun acc s ->
      match Te.Simulate.degradation topo paths d s with
      | Some deg -> Float.max acc deg
      | None -> acc)
    0.
    (Failure.Enumerate.up_to_k topo ~k)

let prop_fixed_demand_matches_oracle =
  QCheck2.Test.make ~name:"bilevel fixed demand == enumeration oracle" ~count:12
    QCheck2.Gen.(
      let* seed = int_range 0 500 in
      let* k = int_range 1 2 in
      return (seed, k))
    (fun (seed, k) ->
      let topo = Wan.Generators.africa_like ~seed ~n:7 () in
      let rng = Random.State.make [| seed + 13 |] in
      let pairs = [ (0, 4); (1, 5) ] in
      let paths = Netpath.Path_set.compute ~n_primary:1 ~n_backup:1 topo pairs in
      let d =
        Traffic.Demand.of_list
          (List.map (fun p -> (p, 20. +. Random.State.float rng 150.)) pairs)
      in
      let spec =
        {
          Raha.Bilevel.default_spec with
          Raha.Bilevel.max_failures = Some k;
          encoding = Raha.Bilevel.Strong_duality { levels = 3 };
        }
      in
      let options = { Raha.Analysis.default_options with spec } in
      let r = Raha.Analysis.analyze ~options topo paths (Traffic.Envelope.fixed d) in
      let oracle = oracle_worst_fixed_demand topo paths d ~k in
      r.Raha.Analysis.status = Milp.Solver.Optimal
      && Float.abs (r.Raha.Analysis.degradation -. oracle) < 1e-4)

let prop_variable_demand_beats_fixed =
  (* joint optimization over an envelope must dominate any fixed demand
     inside it *)
  QCheck2.Test.make ~name:"bilevel variable demand >= fixed demand oracle" ~count:8
    QCheck2.Gen.(int_range 0 300)
    (fun seed ->
      let topo = Wan.Generators.africa_like ~seed ~n:7 () in
      let pairs = [ (0, 4); (1, 5) ] in
      let paths = Netpath.Path_set.compute ~n_primary:1 ~n_backup:1 topo pairs in
      let base = Traffic.Demand.of_list (List.map (fun p -> (p, 80.)) pairs) in
      let envelope = Traffic.Envelope.around ~slack:0.5 base in
      let spec =
        {
          Raha.Bilevel.default_spec with
          Raha.Bilevel.max_failures = Some 1;
          encoding = Raha.Bilevel.Strong_duality { levels = 3 };
        }
      in
      let options = { Raha.Analysis.default_options with spec } in
      let r = Raha.Analysis.analyze ~options topo paths envelope in
      (* oracle: only the envelope's grid corners for the same 3 levels *)
      let oracle = oracle_worst_fixed_demand topo paths base ~k:1 in
      r.Raha.Analysis.status = Milp.Solver.Optimal
      && r.Raha.Analysis.degradation +. 1e-4 >= oracle)

let test_threshold_constraint_respected () =
  (* with a strict threshold the returned scenario must qualify *)
  let paths = fig1_paths () in
  let d = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  let spec =
    {
      Raha.Bilevel.default_spec with
      Raha.Bilevel.threshold = Some 1e-3;
      encoding = Raha.Bilevel.Strong_duality { levels = 3 };
    }
  in
  let options = { Raha.Analysis.default_options with spec } in
  let r = Raha.Analysis.analyze ~options fig1 paths (Traffic.Envelope.fixed d) in
  Alcotest.(check bool) "optimal" true (r.Raha.Analysis.status = Milp.Solver.Optimal);
  Alcotest.(check bool) "scenario qualifies" true (r.Raha.Analysis.scenario_prob >= 1e-3);
  (* fig1 links have p = 0.01: one failure ~ 0.0096 >= 1e-3, two < 1e-3 *)
  Alcotest.(check int) "single failure" 1 r.Raha.Analysis.num_failed_links

let test_threshold_excludes_all () =
  (* threshold above the all-up probability still admits the empty
     scenario only -> degradation 0 *)
  let paths = fig1_paths () in
  let d = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  let spec =
    { Raha.Bilevel.default_spec with Raha.Bilevel.threshold = Some 0.9 }
  in
  let options = { Raha.Analysis.default_options with spec } in
  let r = Raha.Analysis.analyze ~options fig1 paths (Traffic.Envelope.fixed d) in
  Alcotest.(check bool) "optimal" true (r.Raha.Analysis.status = Milp.Solver.Optimal);
  check_float "no failures allowed" 0. r.Raha.Analysis.degradation

let test_connected_enforced () =
  (* CE forbids disconnecting a pair: with unconstrained failures (k = 5)
     the adversary would cut both of B's paths; CE keeps one alive *)
  let paths = fig1_paths () in
  let d = Traffic.Demand.of_list [ ((1, 3), 12.) ] in
  let mk ce =
    let spec =
      {
        Raha.Bilevel.default_spec with
        Raha.Bilevel.max_failures = Some 5;
        connected_enforced = ce;
        encoding = Raha.Bilevel.Strong_duality { levels = 3 };
      }
    in
    let options = { Raha.Analysis.default_options with spec } in
    Raha.Analysis.analyze ~options fig1 paths (Traffic.Envelope.fixed d)
  in
  let without = mk false and with_ce = mk true in
  check_float "without CE all 12 lost" 12. without.Raha.Analysis.degradation;
  Alcotest.(check bool) "CE keeps a path" true
    (with_ce.Raha.Analysis.degradation < 12. -. 1e-6);
  (* CE's worst case: kill the direct path (8 via backup min(5,9)=5 -> 7) *)
  check_float "CE degradation 7" 7. with_ce.Raha.Analysis.degradation

let test_naive_failover_analysis () =
  (* naive fail-over cannot do better than optimal fail-over, so its
     worst-case degradation is at least as large *)
  let paths = fig1_paths () in
  let d = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  let mk naive =
    let spec =
      {
        Raha.Bilevel.default_spec with
        Raha.Bilevel.max_failures = Some 1;
        naive_failover = naive;
        encoding = Raha.Bilevel.Kkt;
      }
    in
    let options = { Raha.Analysis.default_options with spec } in
    Raha.Analysis.analyze ~options fig1 paths (Traffic.Envelope.fixed d)
  in
  let opt = mk false and naive = mk true in
  Alcotest.(check bool) "both optimal" true
    (opt.Raha.Analysis.status = Milp.Solver.Optimal
    && naive.Raha.Analysis.status = Milp.Solver.Optimal);
  Alcotest.(check bool) "naive >= optimal degradation" true
    (naive.Raha.Analysis.degradation +. 1e-6 >= opt.Raha.Analysis.degradation)

let test_mlu_bilevel () =
  (* MLU degradation on fig1 with fixed demand, single failures *)
  let paths = Netpath.Path_set.compute ~n_primary:1 ~n_backup:1 fig1 [ (1, 3); (2, 3) ] in
  let d = Traffic.Demand.of_list [ ((1, 3), 4.); ((2, 3), 4.) ] in
  let spec =
    {
      Raha.Bilevel.default_spec with
      Raha.Bilevel.objective = Te.Formulation.Mlu { u_max = 10. };
      max_failures = Some 1;
      connected_enforced = true;
      encoding = Raha.Bilevel.Strong_duality { levels = 3 };
    }
  in
  let options = { Raha.Analysis.default_options with spec } in
  let r = Raha.Analysis.analyze ~options fig1 paths (Traffic.Envelope.fixed d) in
  Alcotest.(check bool) "optimal" true (r.Raha.Analysis.status = Milp.Solver.Optimal);
  (* oracle: worst single-failure MLU degradation via simulation *)
  let oracle =
    List.fold_left
      (fun acc s ->
        match
          Te.Simulate.degradation ~objective:(Te.Formulation.Mlu { u_max = 10. }) fig1
            paths d s
        with
        | Some deg -> Float.max acc deg
        | None -> acc)
      0.
      (Failure.Enumerate.up_to_k fig1 ~k:1)
  in
  check_float "matches oracle" oracle r.Raha.Analysis.degradation

let test_srlg_coupling () =
  (* BD and CD share a conduit: failing one fails both; with k = 1 the
     adversary can no longer afford the pair, with k = 2 it can *)
  let paths = fig1_paths () in
  let d = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  let srlg = Failure.Srlg.make ~name:"conduit" ~prob:0.01 [ (0, 0); (1, 0) ] in
  let mk k =
    let spec =
      {
        Raha.Bilevel.default_spec with
        Raha.Bilevel.max_failures = Some k;
        srlgs = [ srlg ];
        encoding = Raha.Bilevel.Strong_duality { levels = 3 };
      }
    in
    let options = { Raha.Analysis.default_options with spec } in
    Raha.Analysis.analyze ~options fig1 paths (Traffic.Envelope.fixed d)
  in
  let r1 = mk 1 and r2 = mk 2 in
  (* k=1: BD/CD are off the table (they come as a pair), worst is AD: 6 *)
  check_float "k=1 avoids the coupled pair" 6. r1.Raha.Analysis.degradation;
  (* k=2: both BD and CD fail together: healthy 22, failed min(12,5&9)+min(10,4) = 9 -> 13 *)
  check_float "k=2 takes both" 13. r2.Raha.Analysis.degradation

let suite =
  [
    ("fig1 (a) fixed demand", `Quick, test_fig1_fixed_demand);
    ("fig1 (c/d) naive worst case", `Quick, test_fig1_naive_worst_case);
    ("fig1 (e/f) raha joint", `Quick, test_fig1_raha_joint);
    ("fig1 kkt encoding matches", `Quick, test_fig1_kkt_matches);
    ("fig1 verified by simulation", `Quick, test_fig1_verified_by_simulation);
    ("threshold respected", `Quick, test_threshold_constraint_respected);
    ("threshold excludes all", `Quick, test_threshold_excludes_all);
    ("connected enforced", `Quick, test_connected_enforced);
    ("naive failover analysis", `Quick, test_naive_failover_analysis);
    ("mlu bilevel", `Quick, test_mlu_bilevel);
    ("srlg coupling", `Quick, test_srlg_coupling);
    QCheck_alcotest.to_alcotest prop_fixed_demand_matches_oracle;
    QCheck_alcotest.to_alcotest prop_variable_demand_beats_fixed;
  ]
